package ingest

import (
	"errors"
	"fmt"
	"sync"

	"eva/internal/core"
	"eva/internal/costs"
	"eva/internal/faults"
	"eva/internal/server"
	"eva/internal/simclock"
	"eva/internal/storage"
	"eva/internal/vision"
)

// Typed ingest errors; test with errors.Is.
var (
	// ErrFrameShed is returned by TryIngest when the bounded queue is
	// full even after standing-query degradation: the batch was shed,
	// nothing was appended.
	ErrFrameShed = errors.New("ingest: frame batch shed (queue full)")
	// ErrStreamClosed rejects operations on a closed stream.
	ErrStreamClosed = errors.New("ingest: stream closed")
	// ErrStreamDead rejects operations after a simulated crash killed
	// the stream; reopen the system to recover.
	ErrStreamDead = errors.New("ingest: stream unusable after simulated crash")
)

// deadError ties ErrStreamDead to the fault that caused it, so both
// errors.Is(err, ErrStreamDead) and faults.IsCrash(err) hold.
type deadError struct{ cause error }

func (e *deadError) Error() string {
	return fmt.Sprintf("%v: %v", ErrStreamDead, e.cause)
}

func (e *deadError) Unwrap() []error { return []error{ErrStreamDead, e.cause} }

// Config configures one ingest stream.
type Config struct {
	// Engine is the execution substrate standing-query deltas run on.
	Engine *core.Engine
	// Table is the live video table name.
	Table string
	// Dataset bounds the stream: its Frames field is the capacity.
	Dataset vision.Dataset
	// QueueDepth bounds the ingest queue (batches, not frames); a full
	// queue blocks Ingest and sheds TryIngest. Default 16.
	QueueDepth int
	// CadenceFrames is the standing-query refresh cadence: queries
	// advance in increments aligned to this grid, with the partial
	// tail deferred until more frames arrive (or Drain). Default 8.
	CadenceFrames int64
	// DegradeHighWater is the queue backlog at which the pump degrades
	// standing-query cadence (doubles it) to drain faster — the typed
	// degrade-before-shed backpressure policy. 0 disables degradation.
	DegradeHighWater int
	// MemoryBudget caps each delta execution's materialized bytes
	// (0 = unlimited).
	MemoryBudget int64
}

// Stats is a snapshot of one stream's ingest counters.
type Stats struct {
	// Ingested is the number of frames durably appended.
	Ingested int64
	// Shed counts batches rejected by TryIngest with ErrFrameShed.
	Shed int64
	// Degraded counts pump cycles run at doubled cadence because the
	// backlog crossed DegradeHighWater.
	Degraded int64
	// Cycles counts pump cycles (one per ingested batch or barrier).
	Cycles int64
	// Increments counts standing-query delta executions.
	Increments int64
	// Watermark is the durable frame count.
	Watermark int64
}

// msg is one unit of pump work: a frame batch, or a zero-frame barrier
// (flush forces standing queries all the way to the watermark).
type msg struct {
	frames int
	flush  bool
	done   chan error
}

// Stream is one live table's ingestion pipeline: producers enqueue
// frame batches onto a bounded queue, and a single tracked pump
// goroutine serializes the durable append, the standing-query
// increments, their checkpoints and their notifications. One writer
// makes the whole path deterministic: every durable artifact advances
// in the same order on every run with the same inputs.
type Stream struct {
	cfg   Config
	eng   *core.Engine
	video *storage.Video
	clock *simclock.Clock // ingest-side charges (append, checkpoint, notify, retries)
	group server.Group
	queue chan msg

	// pmu guards producers' sends against Close closing the queue:
	// every enqueue holds it for reading, Close takes it for writing
	// once the closed flag stops new arrivals.
	pmu sync.RWMutex

	mu      sync.Mutex
	inj     *faults.Injector // guarded by mu
	queries []*StandingQuery // guarded by mu; registration order
	closed  bool             // guarded by mu
	dead    error            // guarded by mu; terminal crash, wrapped in deadError
	stats   Stats            // guarded by mu
}

// OpenStream opens a live table and starts its pump. The table's
// durable watermark (and each standing query's checkpoint) is
// recovered from a previous incarnation of the same storage root.
func OpenStream(cfg Config) (*Stream, error) {
	s, err := newStream(cfg)
	if err != nil {
		return nil, err
	}
	s.start()
	return s, nil
}

// newStream builds a stream without starting the pump (tests enqueue
// a deterministic backlog first).
func newStream(cfg Config) (*Stream, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("ingest: config needs an engine")
	}
	if cfg.Table == "" {
		return nil, fmt.Errorf("ingest: config needs a table name")
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.CadenceFrames <= 0 {
		cfg.CadenceFrames = 8
	}
	if _, err := cfg.Engine.Catalog.RegisterVideo(cfg.Table, cfg.Dataset); err != nil {
		return nil, err
	}
	video, err := cfg.Engine.Store.OpenLiveVideo(cfg.Table, cfg.Dataset)
	if err != nil {
		return nil, err
	}
	s := &Stream{
		cfg:   cfg,
		eng:   cfg.Engine,
		video: video,
		clock: &simclock.Clock{},
		queue: make(chan msg, cfg.QueueDepth),
	}
	s.stats.Watermark = video.Watermark()
	return s, nil
}

// start launches the pump on a tracked goroutine.
func (s *Stream) start() { s.group.Go(s.pump) }

// SetInjector installs the stream's deterministic fault injector:
// appends, checkpoint writes and notifications consult it, as do the
// delta executions of its standing queries. nil disables injection.
func (s *Stream) SetInjector(inj *faults.Injector) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inj = inj
	for _, q := range s.queries {
		q.domain.SetInjector(inj)
	}
}

// injector returns the current injector under the stream lock.
func (s *Stream) injector() *faults.Injector {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inj
}

// gate rejects operations on a closed or dead stream.
func (s *Stream) gate() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrStreamClosed
	}
	return s.dead
}

// markDead records the terminal crash error; first cause wins.
func (s *Stream) markDead(cause error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead == nil {
		s.dead = &deadError{cause: cause}
	}
	return s.dead
}

// deadErr returns the terminal error, if any.
func (s *Stream) deadErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dead
}

// Ingest enqueues n frames, blocking while the queue is full
// (backpressure propagates to the producer). It returns once the
// batch is queued, not once it is durable; durable failures surface
// on later calls and on Drain.
func (s *Stream) Ingest(n int) error {
	return s.enqueue(msg{frames: n}, true)
}

// TryIngest enqueues n frames without blocking: a full queue sheds the
// batch with ErrFrameShed. Shedding is the last resort — the pump
// degrades standing-query cadence at DegradeHighWater first.
func (s *Stream) TryIngest(n int) error {
	err := s.enqueue(msg{frames: n}, false)
	if errors.Is(err, ErrFrameShed) {
		s.mu.Lock()
		s.stats.Shed++
		s.mu.Unlock()
	}
	return err
}

// Drain enqueues a flush barrier and waits for the pump to process
// everything queued before it — all frames durable, every standing
// query advanced to the watermark, checkpoints written. It returns the
// stream's terminal error, if any.
func (s *Stream) Drain() error {
	done := make(chan error, 1)
	if err := s.enqueue(msg{flush: true, done: done}, true); err != nil {
		return err
	}
	return <-done
}

// enqueue places one message on the queue under the producer lock.
func (s *Stream) enqueue(m msg, wait bool) error {
	if err := s.gate(); err != nil {
		return err
	}
	s.pmu.RLock()
	defer s.pmu.RUnlock()
	// Re-check under pmu: Close sets closed before taking pmu for
	// writing, so a closed stream can no longer reach the send.
	if err := s.gate(); err != nil {
		return err
	}
	if wait {
		s.queue <- m
		return nil
	}
	select {
	case s.queue <- m:
		return nil
	default:
		return ErrFrameShed
	}
}

// Close stops the stream: new operations fail with ErrStreamClosed,
// the pump drains everything already queued, and every goroutine it
// owns has returned when Close does. Idempotent.
func (s *Stream) Close() error {
	s.mu.Lock()
	wasClosed := s.closed
	s.closed = true
	s.mu.Unlock()
	if wasClosed {
		return nil
	}
	// No producer is in-flight past the closed check once we hold pmu
	// for writing, so closing the channel cannot race a send.
	s.pmu.Lock()
	close(s.queue)
	s.pmu.Unlock()
	s.group.Wait()
	var first error
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, q := range s.queries {
		if err := q.ckpt.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Stats snapshots the stream's counters.
func (s *Stream) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Watermark = s.video.Watermark()
	return st
}

// SimulatedTime returns the ingest-side virtual time (appends,
// checkpoints, notifications, retry backoffs).
func (s *Stream) SimulatedTime() simclock.Breakdown {
	return s.clock.Since(simclock.Snapshot{})
}

// Queries returns the registered standing queries in registration
// order.
func (s *Stream) Queries() []*StandingQuery {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*StandingQuery, len(s.queries))
	copy(out, s.queries)
	return out
}

// pump is the single consumer: it serializes append → increment →
// checkpoint → notify so the durable logs advance identically on
// every run. It runs on a tracked goroutine and exits when Close
// closes the queue.
func (s *Stream) pump() {
	for m := range s.queue {
		err := s.deadErr()
		if err == nil {
			err = s.cycle(m)
		}
		if m.done != nil {
			m.done <- err
		}
	}
}

// cycle processes one message: durably append its frames, then advance
// every standing query along the cadence grid (to the watermark for a
// flush barrier).
func (s *Stream) cycle(m msg) error {
	s.mu.Lock()
	s.stats.Cycles++
	s.mu.Unlock()
	if m.frames > 0 {
		if err := s.appendFrames(m.frames); err != nil {
			return err
		}
	}
	// Backpressure policy: degrade before shedding. When the backlog
	// crosses the high-water mark the pump doubles the standing-query
	// cadence for this cycle — increments get coarser (cheaper per
	// frame), the queue drains faster, and only a still-full queue
	// sheds (in TryIngest). Degradation changes increment boundaries
	// only, never results: the final state is cadence-invariant.
	cadence := s.cfg.CadenceFrames
	if s.cfg.DegradeHighWater > 0 && len(s.queue) >= s.cfg.DegradeHighWater {
		cadence *= 2
		s.mu.Lock()
		s.stats.Degraded++
		s.mu.Unlock()
	}
	wm := s.video.Watermark()
	target := wm
	if !m.flush {
		target = wm - wm%cadence
	}
	for _, q := range s.snapshotQueries() {
		if err := q.advance(target, cadence); err != nil {
			if faults.IsCrash(err) {
				return s.markDead(err)
			}
			return err
		}
	}
	return nil
}

// snapshotQueries copies the query list under the stream lock.
func (s *Stream) snapshotQueries() []*StandingQuery {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*StandingQuery, len(s.queries))
	copy(out, s.queries)
	return out
}

// appendFrames durably advances the watermark, retrying transient
// faults with the capped exponential backoff charged to the retry
// category. The ingest cost is charged per frame — not per batch — so
// an interrupted-and-resumed ingestion charges exactly what an
// uninterrupted one does.
func (s *Stream) appendFrames(n int) error {
	for attempt := 1; ; attempt++ {
		_, err := s.video.AppendFrames(n, s.injector())
		if err == nil {
			break
		}
		if faults.IsTransient(err) && attempt < costs.RetryMaxAttempts {
			s.clock.Charge(simclock.CatRetry, costs.RetryBackoff(attempt+1))
			continue
		}
		if faults.IsCrash(err) {
			return s.markDead(err)
		}
		return err
	}
	s.clock.ChargePerTuple(simclock.CatMaterialize, costs.IngestFrameCost, n)
	s.mu.Lock()
	s.stats.Ingested += int64(n)
	s.mu.Unlock()
	return nil
}
