// Package expr defines the expression AST shared by the parser, the
// symbolic engine, the optimizer, and the execution engine. Expressions
// are immutable once built; rewrites produce new trees.
package expr

import (
	"fmt"
	"strings"

	"eva/internal/types"
)

// Expr is a node in an expression tree.
//
// The implementations form a sealed set (Column, Const, Cmp, Logic,
// Not, IsNull, Arith, Call, Star); switches over Expr must handle
// every variant.
//
// lint:exhaustive
type Expr interface {
	// String renders the expression canonically. Two structurally equal
	// expressions render identically; the symbolic engine uses this
	// rendering as the term name for columns and UDF calls.
	String() string
	// Children returns the direct sub-expressions.
	Children() []Expr
}

// CmpOp is a comparison operator.
//
// lint:exhaustive
type CmpOp int

// Comparison operators supported by the EVA-QL predicate grammar.
const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String returns the SQL spelling of the operator.
func (op CmpOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return fmt.Sprintf("CmpOp(%d)", int(op))
	}
}

// Negate returns the complementary operator (e.g. < becomes >=). An
// out-of-range operator — only producible by arithmetic on the enum —
// is reported as an error so query-path callers surface a planning
// failure instead of panicking.
func (op CmpOp) Negate() (CmpOp, error) {
	switch op {
	case OpEq:
		return OpNe, nil
	case OpNe:
		return OpEq, nil
	case OpLt:
		return OpGe, nil
	case OpLe:
		return OpGt, nil
	case OpGt:
		return OpLe, nil
	case OpGe:
		return OpLt, nil
	}
	return op, fmt.Errorf("expr: negate of unknown operator CmpOp(%d)", int(op))
}

// Flip returns the operator with swapped operands (a < b ⇔ b > a).
func (op CmpOp) Flip() CmpOp {
	switch op {
	case OpEq, OpNe:
		return op
	case OpLt:
		return OpGt
	case OpLe:
		return OpGe
	case OpGt:
		return OpLt
	case OpGe:
		return OpLe
	default:
		return op
	}
}

// Column references a named column of the operator's input schema.
type Column struct {
	Name string
}

// NewColumn returns a column reference.
func NewColumn(name string) *Column { return &Column{Name: name} }

func (c *Column) String() string   { return strings.ToLower(c.Name) }
func (c *Column) Children() []Expr { return nil }

// Const is a literal value.
type Const struct {
	Val types.Datum
}

// NewConst returns a literal expression.
func NewConst(v types.Datum) *Const { return &Const{Val: v} }

func (c *Const) String() string   { return c.Val.String() }
func (c *Const) Children() []Expr { return nil }

// Cmp is a binary comparison.
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// NewCmp returns a comparison expression.
func NewCmp(op CmpOp, l, r Expr) *Cmp { return &Cmp{Op: op, L: l, R: r} }

func (c *Cmp) String() string {
	return fmt.Sprintf("%s %s %s", c.L.String(), c.Op, c.R.String())
}
func (c *Cmp) Children() []Expr { return []Expr{c.L, c.R} }

// LogicOp is a boolean connective.
//
// lint:exhaustive
type LogicOp int

// Boolean connectives.
const (
	OpAnd LogicOp = iota
	OpOr
)

// String returns the SQL spelling of the connective.
func (op LogicOp) String() string {
	if op == OpAnd {
		return "AND"
	}
	return "OR"
}

// Logic combines two boolean expressions.
type Logic struct {
	Op   LogicOp
	L, R Expr
}

// NewAnd returns l AND r.
func NewAnd(l, r Expr) *Logic { return &Logic{Op: OpAnd, L: l, R: r} }

// NewOr returns l OR r.
func NewOr(l, r Expr) *Logic { return &Logic{Op: OpOr, L: l, R: r} }

func (l *Logic) String() string {
	return fmt.Sprintf("(%s %s %s)", l.L.String(), l.Op, l.R.String())
}
func (l *Logic) Children() []Expr { return []Expr{l.L, l.R} }

// Not negates a boolean expression.
type Not struct {
	E Expr
}

// NewNot returns NOT e.
func NewNot(e Expr) *Not { return &Not{E: e} }

func (n *Not) String() string   { return fmt.Sprintf("NOT (%s)", n.E.String()) }
func (n *Not) Children() []Expr { return []Expr{n.E} }

// IsNull tests whether a value is NULL; the conditional Apply operator's
// pass-through predicate is built from this node.
type IsNull struct {
	E Expr
}

// NewIsNull returns e IS NULL.
func NewIsNull(e Expr) *IsNull { return &IsNull{E: e} }

func (n *IsNull) String() string   { return fmt.Sprintf("%s IS NULL", n.E.String()) }
func (n *IsNull) Children() []Expr { return []Expr{n.E} }

// ArithOp is an arithmetic operator.
//
// lint:exhaustive
type ArithOp int

// Arithmetic operators.
const (
	OpAdd ArithOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
)

// String returns the SQL spelling of the operator.
func (op ArithOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	default:
		return fmt.Sprintf("ArithOp(%d)", int(op))
	}
}

// Arith is a binary arithmetic expression.
type Arith struct {
	Op   ArithOp
	L, R Expr
}

// NewArith returns an arithmetic expression.
func NewArith(op ArithOp, l, r Expr) *Arith { return &Arith{Op: op, L: l, R: r} }

func (a *Arith) String() string {
	return fmt.Sprintf("(%s %s %s)", a.L.String(), a.Op, a.R.String())
}
func (a *Arith) Children() []Expr { return []Expr{a.L, a.R} }

// Call invokes a function: either a cheap scalar builtin (e.g. AREA) or
// a UDF wrapping a vision model (e.g. CarType(frame, bbox)). The
// optimizer decides which calls are expensive enough to materialize.
type Call struct {
	Fn   string
	Args []Expr
	// Accuracy carries the ACCURACY property when the call names a
	// logical UDF (e.g. ObjectDetector ACCURACY 'HIGH'); empty otherwise.
	Accuracy string
}

// NewCall returns a function-call expression.
func NewCall(fn string, args ...Expr) *Call { return &Call{Fn: fn, Args: args} }

func (c *Call) String() string {
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	s := fmt.Sprintf("%s(%s)", strings.ToLower(c.Fn), strings.Join(parts, ", "))
	if c.Accuracy != "" {
		s += " accuracy '" + strings.ToLower(c.Accuracy) + "'"
	}
	return s
}
func (c *Call) Children() []Expr { return c.Args }

// Star is the `*` select item (also used for COUNT(*)).
type Star struct{}

func (Star) String() string   { return "*" }
func (Star) Children() []Expr { return nil }

// Equal reports structural equality of two expressions, using the
// canonical rendering (which is injective over the AST by construction).
func Equal(a, b Expr) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return a.String() == b.String()
}

// SplitConjuncts flattens a tree of ANDs into its conjuncts.
func SplitConjuncts(e Expr) []Expr {
	if l, ok := e.(*Logic); ok && l.Op == OpAnd {
		return append(SplitConjuncts(l.L), SplitConjuncts(l.R)...)
	}
	return []Expr{e}
}

// CombineConjuncts joins expressions with AND; returns nil for an empty
// list (the always-true predicate).
func CombineConjuncts(es []Expr) Expr {
	var out Expr
	for _, e := range es {
		if e == nil {
			continue
		}
		if out == nil {
			out = e
		} else {
			out = NewAnd(out, e)
		}
	}
	return out
}

// Walk visits e and every sub-expression in pre-order.
func Walk(e Expr, visit func(Expr)) {
	if e == nil {
		return
	}
	visit(e)
	for _, c := range e.Children() {
		Walk(c, visit)
	}
}

// CollectCalls returns every Call in the expression, in pre-order.
func CollectCalls(e Expr) []*Call {
	var out []*Call
	Walk(e, func(n Expr) {
		if c, ok := n.(*Call); ok {
			out = append(out, c)
		}
	})
	return out
}

// CollectColumns returns the set of column names referenced by e.
func CollectColumns(e Expr) []string {
	seen := make(map[string]struct{})
	var out []string
	Walk(e, func(n Expr) {
		if c, ok := n.(*Column); ok {
			key := strings.ToLower(c.Name)
			if _, dup := seen[key]; !dup {
				seen[key] = struct{}{}
				out = append(out, c.Name)
			}
		}
	})
	return out
}

// Rewrite rebuilds the expression bottom-up, replacing each node with
// f(node) after its children have been rewritten. f must return the node
// itself (possibly reconstructed) or a replacement.
func Rewrite(e Expr, f func(Expr) Expr) Expr {
	if e == nil {
		return nil
	}
	switch n := e.(type) {
	case *Cmp:
		e = NewCmp(n.Op, Rewrite(n.L, f), Rewrite(n.R, f))
	case *Logic:
		e = &Logic{Op: n.Op, L: Rewrite(n.L, f), R: Rewrite(n.R, f)}
	case *Not:
		e = NewNot(Rewrite(n.E, f))
	case *IsNull:
		e = NewIsNull(Rewrite(n.E, f))
	case *Arith:
		e = NewArith(n.Op, Rewrite(n.L, f), Rewrite(n.R, f))
	case *Call:
		args := make([]Expr, len(n.Args))
		for i, a := range n.Args {
			args[i] = Rewrite(a, f)
		}
		e = &Call{Fn: n.Fn, Args: args, Accuracy: n.Accuracy}
	default: // lint:nonexhaustive leaf nodes (Column, Const, Star) have no children to rewrite
	}
	return f(e)
}
