package expr

import (
	"strings"
	"testing"

	"eva/internal/types"
)

func TestCanonicalString(t *testing.T) {
	e := NewAnd(
		NewCmp(OpGt, NewColumn("ID"), NewConst(types.NewInt(10))),
		NewCmp(OpEq, NewCall("CarType", NewColumn("frame"), NewColumn("bbox")), NewConst(types.NewString("Nissan"))),
	)
	want := "(id > 10 AND cartype(frame, bbox) = 'Nissan')"
	if got := e.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestCmpOpHelpers(t *testing.T) {
	negs := map[CmpOp]CmpOp{OpEq: OpNe, OpNe: OpEq, OpLt: OpGe, OpLe: OpGt, OpGt: OpLe, OpGe: OpLt}
	for op, want := range negs {
		got, err := op.Negate()
		if err != nil {
			t.Fatalf("%v.Negate(): %v", op, err)
		}
		if got != want {
			t.Errorf("%v.Negate() = %v, want %v", op, got, want)
		}
	}
	if _, err := CmpOp(99).Negate(); err == nil {
		t.Error("CmpOp(99).Negate() succeeded, want error")
	}
	flips := map[CmpOp]CmpOp{OpLt: OpGt, OpLe: OpGe, OpGt: OpLt, OpGe: OpLe, OpEq: OpEq, OpNe: OpNe}
	for op, want := range flips {
		if got := op.Flip(); got != want {
			t.Errorf("%v.Flip() = %v, want %v", op, got, want)
		}
	}
}

func TestEqualUsesStructure(t *testing.T) {
	a := NewCmp(OpGt, NewColumn("id"), NewConst(types.NewInt(5)))
	b := NewCmp(OpGt, NewColumn("ID"), NewConst(types.NewInt(5)))
	c := NewCmp(OpGe, NewColumn("id"), NewConst(types.NewInt(5)))
	if !Equal(a, b) {
		t.Error("case-insensitive columns should be equal")
	}
	if Equal(a, c) {
		t.Error("different operators should not be equal")
	}
	if !Equal(nil, nil) || Equal(a, nil) {
		t.Error("nil handling wrong")
	}
}

func TestSplitAndCombineConjuncts(t *testing.T) {
	a := NewCmp(OpGt, NewColumn("id"), NewConst(types.NewInt(1)))
	b := NewCmp(OpEq, NewColumn("label"), NewConst(types.NewString("car")))
	c := NewCmp(OpLt, NewColumn("area"), NewConst(types.NewFloat(0.5)))
	e := NewAnd(NewAnd(a, b), c)
	parts := SplitConjuncts(e)
	if len(parts) != 3 {
		t.Fatalf("SplitConjuncts produced %d parts", len(parts))
	}
	// An OR is a single conjunct.
	or := NewOr(a, b)
	if got := SplitConjuncts(or); len(got) != 1 {
		t.Errorf("OR split into %d parts", len(got))
	}
	re := CombineConjuncts(parts)
	if !Equal(e, re) {
		t.Errorf("recombine: %q != %q", re, e)
	}
	if CombineConjuncts(nil) != nil {
		t.Error("empty conjunct list should combine to nil")
	}
	if got := CombineConjuncts([]Expr{nil, a, nil}); !Equal(got, a) {
		t.Errorf("nil-tolerant combine = %q", got)
	}
}

func TestCollectCallsAndColumns(t *testing.T) {
	e := NewAnd(
		NewCmp(OpEq, NewCall("ColorDet", NewColumn("frame"), NewColumn("bbox")), NewConst(types.NewString("Gray"))),
		NewCmp(OpGt, NewCall("area", NewColumn("bbox")), NewConst(types.NewFloat(0.3))),
	)
	calls := CollectCalls(e)
	if len(calls) != 2 || calls[0].Fn != "ColorDet" || calls[1].Fn != "area" {
		t.Errorf("CollectCalls = %v", calls)
	}
	cols := CollectColumns(e)
	if len(cols) != 2 {
		t.Errorf("CollectColumns = %v, want frame,bbox once each", cols)
	}
}

func TestRewriteReplacesCalls(t *testing.T) {
	call := NewCall("CarType", NewColumn("frame"), NewColumn("bbox"))
	e := NewCmp(OpEq, call, NewConst(types.NewString("Nissan")))
	out := Rewrite(e, func(n Expr) Expr {
		if c, ok := n.(*Call); ok && strings.EqualFold(c.Fn, "CarType") {
			return NewColumn("cartype_out")
		}
		return n
	})
	if got := out.String(); got != "cartype_out = 'Nissan'" {
		t.Errorf("rewrite = %q", got)
	}
	// Original untouched.
	if !strings.Contains(e.String(), "cartype(") {
		t.Error("rewrite mutated the original tree")
	}
}

func row(vals map[string]types.Datum) MapResolver {
	return MapResolver{Cols: vals, Fns: map[string]func([]types.Datum) (types.Datum, error){
		"area": func(args []types.Datum) (types.Datum, error) {
			return types.NewFloat(args[0].Float() * 2), nil
		},
	}}
}

func TestEvalComparisons(t *testing.T) {
	r := row(map[string]types.Datum{
		"id":    types.NewInt(42),
		"label": types.NewString("car"),
		"area":  types.NewFloat(0.4),
		"miss":  types.Null,
	})
	tests := []struct {
		e    Expr
		want bool
	}{
		{NewCmp(OpGt, NewColumn("id"), NewConst(types.NewInt(10))), true},
		{NewCmp(OpLe, NewColumn("id"), NewConst(types.NewInt(10))), false},
		{NewCmp(OpEq, NewColumn("label"), NewConst(types.NewString("car"))), true},
		{NewCmp(OpNe, NewColumn("label"), NewConst(types.NewString("bus"))), true},
		{NewCmp(OpGe, NewColumn("area"), NewConst(types.NewFloat(0.4))), true},
		{NewCmp(OpEq, NewColumn("miss"), NewConst(types.NewInt(0))), false}, // NULL compares false
		{NewIsNull(NewColumn("miss")), true},
		{NewIsNull(NewColumn("id")), false},
		{NewNot(NewCmp(OpGt, NewColumn("id"), NewConst(types.NewInt(100)))), true},
		{NewAnd(NewCmp(OpGt, NewColumn("id"), NewConst(types.NewInt(10))), NewCmp(OpEq, NewColumn("label"), NewConst(types.NewString("car")))), true},
		{NewOr(NewCmp(OpGt, NewColumn("id"), NewConst(types.NewInt(100))), NewCmp(OpEq, NewColumn("label"), NewConst(types.NewString("car")))), true},
	}
	for _, tt := range tests {
		got, err := EvalBool(tt.e, r)
		if err != nil {
			t.Fatalf("%q: %v", tt.e, err)
		}
		if got != tt.want {
			t.Errorf("%q = %v, want %v", tt.e, got, tt.want)
		}
	}
}

func TestEvalNilPredicateIsTrue(t *testing.T) {
	got, err := EvalBool(nil, row(nil))
	if err != nil || !got {
		t.Errorf("nil predicate = %v, %v; want true", got, err)
	}
}

func TestEvalArith(t *testing.T) {
	r := row(map[string]types.Datum{"id": types.NewInt(7), "area": types.NewFloat(0.5)})
	tests := []struct {
		e    Expr
		want types.Datum
	}{
		{NewArith(OpAdd, NewColumn("id"), NewConst(types.NewInt(3))), types.NewInt(10)},
		{NewArith(OpSub, NewColumn("id"), NewConst(types.NewInt(3))), types.NewInt(4)},
		{NewArith(OpMul, NewColumn("id"), NewConst(types.NewInt(3))), types.NewInt(21)},
		{NewArith(OpDiv, NewColumn("id"), NewConst(types.NewInt(2))), types.NewInt(3)},
		{NewArith(OpMod, NewColumn("id"), NewConst(types.NewInt(4))), types.NewInt(3)},
		{NewArith(OpMul, NewColumn("area"), NewConst(types.NewFloat(2))), types.NewFloat(1)},
		{NewArith(OpAdd, NewColumn("id"), NewConst(types.NewFloat(0.5))), types.NewFloat(7.5)},
	}
	for _, tt := range tests {
		got, err := Eval(tt.e, r)
		if err != nil {
			t.Fatalf("%q: %v", tt.e, err)
		}
		if !types.Equal(got, tt.want) {
			t.Errorf("%q = %v, want %v", tt.e, got, tt.want)
		}
	}
}

func TestEvalArithErrors(t *testing.T) {
	r := row(map[string]types.Datum{"id": types.NewInt(7), "label": types.NewString("car")})
	bad := []Expr{
		NewArith(OpDiv, NewColumn("id"), NewConst(types.NewInt(0))),
		NewArith(OpMod, NewColumn("id"), NewConst(types.NewInt(0))),
		NewArith(OpAdd, NewColumn("label"), NewConst(types.NewInt(1))),
		NewArith(OpDiv, NewConst(types.NewFloat(1)), NewConst(types.NewFloat(0))),
		NewArith(OpMod, NewConst(types.NewFloat(1)), NewConst(types.NewFloat(2))),
	}
	for _, e := range bad {
		if _, err := Eval(e, r); err == nil {
			t.Errorf("%q: expected error", e)
		}
	}
	// NULL propagates silently through arithmetic.
	got, err := Eval(NewArith(OpAdd, NewConst(types.Null), NewConst(types.NewInt(1))), r)
	if err != nil || !got.IsNull() {
		t.Errorf("NULL + 1 = %v, %v; want NULL", got, err)
	}
}

func TestEvalCallAndErrors(t *testing.T) {
	r := row(map[string]types.Datum{"area": types.NewFloat(0.25)})
	got, err := Eval(NewCall("AREA", NewColumn("area")), r)
	if err != nil {
		t.Fatal(err)
	}
	if got.Float() != 0.5 {
		t.Errorf("area(0.25) = %v", got)
	}
	if _, err := Eval(NewCall("nope"), r); err == nil {
		t.Error("unknown function should error")
	}
	if _, err := Eval(NewColumn("ghost"), r); err == nil {
		t.Error("unknown column should error")
	}
	if _, err := Eval(NewCmp(OpEq, NewColumn("area"), NewConst(types.NewString("x"))), r); err == nil {
		t.Error("incomparable kinds should error")
	}
	if _, err := EvalBool(NewArith(OpAdd, NewConst(types.NewInt(1)), NewConst(types.NewInt(1))), r); err == nil {
		t.Error("non-boolean predicate should error")
	}
	if _, err := Eval(Star{}, r); err == nil {
		t.Error("bare * should error")
	}
}

func TestShortCircuitSkipsErrors(t *testing.T) {
	r := row(map[string]types.Datum{"id": types.NewInt(1)})
	bad := NewColumn("ghost")
	// id > 5 is false, so AND must not evaluate the bad branch.
	e := NewAnd(NewCmp(OpGt, NewColumn("id"), NewConst(types.NewInt(5))), bad)
	if got, err := EvalBool(e, r); err != nil || got {
		t.Errorf("short-circuit AND = %v, %v", got, err)
	}
	e2 := NewOr(NewCmp(OpLt, NewColumn("id"), NewConst(types.NewInt(5))), bad)
	if got, err := EvalBool(e2, r); err != nil || !got {
		t.Errorf("short-circuit OR = %v, %v", got, err)
	}
}

func TestCallAccuracyRendering(t *testing.T) {
	c := &Call{Fn: "ObjectDetector", Args: []Expr{NewColumn("frame")}, Accuracy: "HIGH"}
	if got := c.String(); got != "objectdetector(frame) accuracy 'high'" {
		t.Errorf("String() = %q", got)
	}
}
