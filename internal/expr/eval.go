package expr

import (
	"fmt"
	"strings"

	"eva/internal/types"
)

// Resolver supplies column values and function implementations during
// evaluation. The execution engine implements it per-row; tests use
// MapResolver.
type Resolver interface {
	// Resolve returns the value of the named column and whether it exists.
	Resolve(name string) (types.Datum, bool)
	// CallFn evaluates a scalar function over already-evaluated arguments.
	CallFn(fn string, args []types.Datum) (types.Datum, error)
}

// MapResolver is a Resolver backed by a map of column values and an
// optional function table.
type MapResolver struct {
	Cols map[string]types.Datum
	Fns  map[string]func(args []types.Datum) (types.Datum, error)
}

// Resolve implements Resolver.
func (m MapResolver) Resolve(name string) (types.Datum, bool) {
	d, ok := m.Cols[strings.ToLower(name)]
	return d, ok
}

// CallFn implements Resolver.
func (m MapResolver) CallFn(fn string, args []types.Datum) (types.Datum, error) {
	f, ok := m.Fns[strings.ToLower(fn)]
	if !ok {
		return types.Null, fmt.Errorf("expr: unknown function %q", fn)
	}
	return f(args)
}

// Eval evaluates the expression against the resolver.
//
// NULL semantics are pragmatic rather than full SQL three-valued logic:
// a comparison involving NULL is false (so negative predicates do not
// resurrect missing rows), NOT flips the boolean, and IS NULL observes
// NULL directly. This matches how the paper's conditional Apply operator
// uses NULLs purely as missing-row markers in view joins.
func Eval(e Expr, r Resolver) (types.Datum, error) {
	switch n := e.(type) {
	case *Const:
		return n.Val, nil
	case *Column:
		d, ok := r.Resolve(n.Name)
		if !ok {
			return types.Null, fmt.Errorf("expr: unknown column %q", n.Name)
		}
		return d, nil
	case *Cmp:
		l, err := Eval(n.L, r)
		if err != nil {
			return types.Null, err
		}
		rv, err := Eval(n.R, r)
		if err != nil {
			return types.Null, err
		}
		if l.IsNull() || rv.IsNull() {
			return types.NewBool(false), nil
		}
		if !types.Comparable(l, rv) {
			return types.Null, fmt.Errorf("expr: cannot compare %s with %s in %q", l.Kind(), rv.Kind(), e)
		}
		c := types.Compare(l, rv)
		var ok bool
		switch n.Op {
		case OpEq:
			ok = c == 0
		case OpNe:
			ok = c != 0
		case OpLt:
			ok = c < 0
		case OpLe:
			ok = c <= 0
		case OpGt:
			ok = c > 0
		case OpGe:
			ok = c >= 0
		}
		return types.NewBool(ok), nil
	case *Logic:
		l, err := evalBool(n.L, r)
		if err != nil {
			return types.Null, err
		}
		// Short-circuit.
		if n.Op == OpAnd && !l {
			return types.NewBool(false), nil
		}
		if n.Op == OpOr && l {
			return types.NewBool(true), nil
		}
		rv, err := evalBool(n.R, r)
		if err != nil {
			return types.Null, err
		}
		return types.NewBool(rv), nil
	case *Not:
		v, err := evalBool(n.E, r)
		if err != nil {
			return types.Null, err
		}
		return types.NewBool(!v), nil
	case *IsNull:
		v, err := Eval(n.E, r)
		if err != nil {
			return types.Null, err
		}
		return types.NewBool(v.IsNull()), nil
	case *Arith:
		l, err := Eval(n.L, r)
		if err != nil {
			return types.Null, err
		}
		rv, err := Eval(n.R, r)
		if err != nil {
			return types.Null, err
		}
		return evalArith(n.Op, l, rv)
	case *Call:
		args := make([]types.Datum, len(n.Args))
		for i, a := range n.Args {
			v, err := Eval(a, r)
			if err != nil {
				return types.Null, err
			}
			args[i] = v
		}
		return r.CallFn(n.Fn, args)
	case Star, *Star:
		return types.Null, fmt.Errorf("expr: cannot evaluate * outside an aggregate")
	default:
		return types.Null, fmt.Errorf("expr: cannot evaluate %T", e)
	}
}

func evalBool(e Expr, r Resolver) (bool, error) {
	v, err := Eval(e, r)
	if err != nil {
		return false, err
	}
	if v.IsNull() {
		return false, nil
	}
	if v.Kind() != types.KindBool {
		return false, fmt.Errorf("expr: %q is %s, want BOOLEAN", e, v.Kind())
	}
	return v.Bool(), nil
}

// EvalBool evaluates a predicate; NULL results count as false.
func EvalBool(e Expr, r Resolver) (bool, error) {
	if e == nil {
		return true, nil
	}
	return evalBool(e, r)
}

func evalArith(op ArithOp, l, r types.Datum) (types.Datum, error) {
	if l.IsNull() || r.IsNull() {
		return types.Null, nil
	}
	if !l.Kind().Numeric() || !r.Kind().Numeric() {
		return types.Null, fmt.Errorf("expr: arithmetic on %s and %s", l.Kind(), r.Kind())
	}
	if l.Kind() == types.KindInt && r.Kind() == types.KindInt {
		a, b := l.Int(), r.Int()
		switch op {
		case OpAdd:
			return types.NewInt(a + b), nil
		case OpSub:
			return types.NewInt(a - b), nil
		case OpMul:
			return types.NewInt(a * b), nil
		case OpDiv:
			if b == 0 {
				return types.Null, fmt.Errorf("expr: integer division by zero")
			}
			return types.NewInt(a / b), nil
		case OpMod:
			if b == 0 {
				return types.Null, fmt.Errorf("expr: modulo by zero")
			}
			return types.NewInt(a % b), nil
		}
	}
	a, b := l.Float(), r.Float()
	switch op {
	case OpAdd:
		return types.NewFloat(a + b), nil
	case OpSub:
		return types.NewFloat(a - b), nil
	case OpMul:
		return types.NewFloat(a * b), nil
	case OpDiv:
		if b == 0 {
			return types.Null, fmt.Errorf("expr: division by zero")
		}
		return types.NewFloat(a / b), nil
	case OpMod:
		return types.Null, fmt.Errorf("expr: modulo on floats")
	}
	return types.Null, fmt.Errorf("expr: unknown arithmetic operator %v", op)
}
