package core

import (
	"errors"
	"strings"
	"testing"

	"eva/internal/faults"
	"eva/internal/optimizer"
	"eva/internal/simclock"
	"eva/internal/udf"
	"eva/internal/vision"
)

const logicalSQL = `SELECT id, label FROM video CROSS APPLY ObjectDetector(frame)
	WHERE id < 200 AND label = 'car'`

// TestDegradeToFallbackModel trips the cheapest detector's breaker
// mid-query and checks that the engine replans onto the next model
// implementing the logical task instead of failing.
func TestDegradeToFallbackModel(t *testing.T) {
	e := newEngine(t)
	inj := faults.New(3)
	// YoloTiny fails permanently on every invocation: its breaker trips
	// after the threshold, the running query aborts with
	// ErrModelUnavailable, and the replan must bind a fallback.
	inj.Rule(faults.SiteUDF(vision.YoloTiny), faults.Rule{Kind: faults.Permanent, Prob: 1})
	e.SetFaults(inj)

	out, err := e.Execute(sel(t, logicalSQL), optimizer.EVAMode())
	if err != nil {
		t.Fatalf("query did not degrade: %v", err)
	}
	if out.Report.DetectorEval != vision.FasterRCNN50 {
		t.Errorf("fallback eval = %s, want %s", out.Report.DetectorEval, vision.FasterRCNN50)
	}
	if len(out.Report.Degraded) == 0 {
		t.Fatal("degradation not reported")
	}
	d := out.Report.Degraded[0]
	if !strings.EqualFold(d.Logical, "ObjectDetector") || d.Chosen != vision.FasterRCNN50 {
		t.Errorf("degradation record = %+v", d)
	}
	found := false
	for _, s := range d.Skipped {
		if s == vision.YoloTiny {
			found = true
		}
	}
	if !found {
		t.Errorf("skipped models %v missing %s", d.Skipped, vision.YoloTiny)
	}
	if out.Rows.Len() == 0 {
		t.Error("degraded query returned no rows")
	}
}

// TestAllModelsDownFailsCleanly opens every detector breaker and checks
// the engine reports a clean error (no panic, no partial result).
func TestAllModelsDownFailsCleanly(t *testing.T) {
	e := newEngine(t)
	inj := faults.New(5)
	inj.Rule(faults.SiteUDFAny, faults.Rule{Kind: faults.Permanent, Prob: 1})
	e.SetFaults(inj)

	_, err := e.Execute(sel(t, logicalSQL), optimizer.EVAMode())
	if err == nil {
		t.Fatal("want error with every model down")
	}
	// Either the replan budget ran out on a failing fallback, or the
	// optimizer found no healthy candidate; both must carry context.
	ok := errors.Is(err, udf.ErrModelUnavailable) ||
		errors.Is(err, udf.ErrEvalFailed) ||
		strings.Contains(err.Error(), "unavailable")
	if !ok {
		t.Errorf("unexpected error shape: %v", err)
	}
}

// TestBreakerRecoveryRestoresNominalChoice lets the tripped model's
// virtual-time cooldown elapse and checks planning returns to it.
// The fault rule is not Limit-bounded: breaker admission is
// batch-granular (the executor freezes one health snapshot per batch),
// so a rule that exhausts mid-batch would let the batch's remaining
// admitted rows succeed and close the freshly tripped breaker again.
func TestBreakerRecoveryRestoresNominalChoice(t *testing.T) {
	e := newEngine(t)
	inj := faults.New(3)
	inj.Rule(faults.SiteUDF(vision.YoloTiny),
		faults.Rule{Kind: faults.Permanent, Prob: 1})
	e.SetFaults(inj)
	if _, err := e.Execute(sel(t, logicalSQL), optimizer.EVAMode()); err != nil {
		t.Fatalf("degraded run failed: %v", err)
	}
	if e.Runtime.ModelHealthy(vision.YoloTiny) {
		t.Fatal("breaker should still be open")
	}
	// The detector queries above charged well past the 30 s virtual
	// cooldown only if the workload was large; force it explicitly.
	e.Clock.Charge(simclock.CatOther, udf.DefaultBreakerCooldown)
	res, err := e.Plan(sel(t, logicalSQL), optimizer.EVAMode())
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.DetectorEval != vision.YoloTiny {
		t.Errorf("post-cooldown eval = %s, want %s", res.Report.DetectorEval, vision.YoloTiny)
	}
}
