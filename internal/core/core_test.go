package core

import (
	"strings"
	"testing"

	"eva/internal/optimizer"
	"eva/internal/parser"
	"eva/internal/storage"
	"eva/internal/vision"
)

func newEngine(t *testing.T) *Engine {
	t.Helper()
	store, err := storage.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e := New(store, 0)
	if _, err := e.Catalog.RegisterVideo("video", vision.Jackson); err != nil {
		t.Fatal(err)
	}
	if _, err := store.CreateVideo("video", vision.Jackson); err != nil {
		t.Fatal(err)
	}
	return e
}

func sel(t *testing.T, sql string) *parser.SelectStmt {
	t.Helper()
	stmt, err := parser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	return stmt.(*parser.SelectStmt)
}

const pipelineSQL = `SELECT id, label FROM video CROSS APPLY FasterRCNNResnet50(frame)
	WHERE id < 300 AND label = 'car'`

func TestEngineExecutePipeline(t *testing.T) {
	e := newEngine(t)
	out, err := e.Execute(sel(t, pipelineSQL), optimizer.EVAMode())
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows == nil || out.Plan == nil {
		t.Fatal("missing outcome pieces")
	}
	if out.Report.DetectorEval != vision.FasterRCNN50 {
		t.Errorf("detector = %s", out.Report.DetectorEval)
	}
	// Second execution is served from the views the first materialized.
	before := e.Runtime.CounterSnapshot()["fasterrcnnresnet50"]
	out2, err := e.Execute(sel(t, pipelineSQL), optimizer.EVAMode())
	if err != nil {
		t.Fatal(err)
	}
	after := e.Runtime.CounterSnapshot()["fasterrcnnresnet50"]
	if after.Evaluated != before.Evaluated {
		t.Errorf("second run evaluated %d new frames", after.Evaluated-before.Evaluated)
	}
	if out.Rows.Len() != out2.Rows.Len() {
		t.Errorf("rows differ: %d vs %d", out.Rows.Len(), out2.Rows.Len())
	}
}

func TestEngineExecuteTraced(t *testing.T) {
	e := newEngine(t)
	out, err := e.ExecuteTraced(sel(t, "SELECT id FROM video WHERE id < 20"), optimizer.EVAMode())
	if err != nil {
		t.Fatal(err)
	}
	if out.Trace == nil {
		t.Fatal("trace missing")
	}
	text := out.Trace.String()
	if !strings.Contains(text, "Scan(video") || !strings.Contains(text, "rows=20") {
		t.Errorf("trace = %q", text)
	}
	// Untraced execution has no trace.
	out, err = e.Execute(sel(t, "SELECT id FROM video WHERE id < 5"), optimizer.EVAMode())
	if err != nil || out.Trace != nil {
		t.Errorf("untraced outcome: %v, %v", out.Trace, err)
	}
}

func TestEnginePlanIsDryRun(t *testing.T) {
	e := newEngine(t)
	res, err := e.Plan(sel(t, pipelineSQL), optimizer.EVAMode())
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan == nil {
		t.Fatal("no plan")
	}
	// Nothing committed: the manager's entry (created by Lookup during
	// planning) still has p_u = FALSE.
	for _, entry := range e.Manager.Entries() {
		if !entry.Agg.IsFalse() {
			t.Errorf("Plan committed aggregated predicate for %s: %s", entry.Sig, entry.Agg)
		}
	}
}

func TestEngineReset(t *testing.T) {
	e := newEngine(t)
	if _, err := e.Execute(sel(t, pipelineSQL), optimizer.EVAMode()); err != nil {
		t.Fatal(err)
	}
	if e.Store.TotalViewFootprint() == 0 || e.Clock.Total() == 0 {
		t.Fatal("nothing to reset")
	}
	if err := e.Reset(); err != nil {
		t.Fatal(err)
	}
	if e.Store.TotalViewFootprint() != 0 {
		t.Error("views survived reset")
	}
	if e.Clock.Total() != 0 || e.Runtime.HitPercentage() != 0 {
		t.Error("metrics survived reset")
	}
	if len(e.Manager.Entries()) != 0 {
		t.Error("aggregated predicates survived reset")
	}
}

func TestEngineErrorsPropagate(t *testing.T) {
	e := newEngine(t)
	if _, err := e.Execute(sel(t, "SELECT id FROM ghost WHERE id < 5"), optimizer.EVAMode()); err == nil {
		t.Error("unknown table should error")
	}
}
