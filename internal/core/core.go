// Package core wires together the semantic reuse pipeline of §3.1 —
// the paper's primary contribution. One Engine owns the four-step
// lifecycle of every query:
//
//	parse tree ─▶ ① identify candidate UDFs
//	           ─▶ ② compute signatures, fetch aggregated predicates
//	           ─▶ ③ materialization-aware optimizations (Eq. 4 ranking,
//	                Algorithm 2 set cover)
//	           ─▶ ④ rule-based transformation (Fig. 3 / Fig. 4)
//	           ─▶ execution with view reads, guarded evaluation, stores
//
// Steps ①–④ live in internal/optimizer and internal/udf; execution in
// internal/exec. The Engine composes them over shared state (catalog,
// UDFManager, storage, virtual clock) and is what the public eva
// package drives.
package core

import (
	"errors"
	"time"

	"eva/internal/catalog"
	"eva/internal/exec"
	"eva/internal/faults"
	"eva/internal/optimizer"
	"eva/internal/parser"
	"eva/internal/plan"
	"eva/internal/server"
	"eva/internal/simclock"
	"eva/internal/storage"
	"eva/internal/types"
	"eva/internal/udf"
)

// maxReplans bounds the replan-on-failure loop. Re-running a query
// whose eval model failed feeds that model's circuit breaker (one
// failure per run), so the bound must cover at least
// udf.DefaultBreakerThreshold failing runs plus the degraded run that
// follows the trip.
const maxReplans = udf.DefaultBreakerThreshold

// Engine is one instance of the semantic reuse pipeline.
type Engine struct {
	Catalog *catalog.Catalog
	Manager *udf.Manager
	Runtime *udf.Runtime
	Store   *storage.Engine
	Clock   *simclock.Clock
	Opt     *optimizer.Optimizer
	// Deadline is the virtual-time budget applied to each query
	// execution (0 = unlimited).
	Deadline time.Duration
	// Workers is the parallel pipelined executor's worker count
	// (0 or 1 = serial); see exec.Context.Workers.
	Workers int
	// Pool recycles columnar batches across queries (nil = every
	// operator allocates fresh batches); see exec.Context.Pool and
	// DESIGN.md §13.
	Pool *types.BatchPool

	batchSize int
	faults    *faults.Injector
}

// New assembles an engine over a storage root.
func New(store *storage.Engine, batchSize int) *Engine {
	cat := catalog.New()
	clock := &simclock.Clock{}
	mgr := udf.NewManager()
	rt := udf.NewRuntime(cat, clock)
	opt := optimizer.New(cat, mgr, clock)
	// The runtime's breaker state and observed failure rates drive the
	// optimizer's graceful degradation (health-filtered Algorithm 2).
	opt.Health = rt
	return &Engine{
		Catalog:   cat,
		Manager:   mgr,
		Runtime:   rt,
		Store:     store,
		Clock:     clock,
		Opt:       opt,
		batchSize: batchSize,
	}
}

// SetFaults installs one deterministic fault injector across every
// fault site — UDF evaluation, view writes, and the executor's
// deadline checks (nil disables injection).
func (e *Engine) SetFaults(inj *faults.Injector) {
	e.faults = inj
	e.Runtime.SetInjector(inj)
	e.Store.SetInjector(inj)
}

// Injector returns the engine-wide fault injector installed by
// SetFaults (nil when none). The eva layer's repair driver consults it
// for the view:repair site family.
func (e *Engine) Injector() *faults.Injector {
	return e.faults
}

// Outcome is the result of running one SELECT through the pipeline.
type Outcome struct {
	Rows   *types.Batch
	Plan   plan.Node
	Report optimizer.Report
	// Trace holds per-operator statistics when requested.
	Trace *exec.Trace
}

// Execute runs a SELECT through the full pipeline under the mode.
func (e *Engine) Execute(stmt *parser.SelectStmt, mode optimizer.Mode) (*Outcome, error) {
	return e.execute(stmt, mode, false, ExecOpts{})
}

// ExecuteTraced is Execute with per-operator instrumentation.
func (e *Engine) ExecuteTraced(stmt *parser.SelectStmt, mode optimizer.Mode) (*Outcome, error) {
	return e.execute(stmt, mode, true, ExecOpts{})
}

// ExecOpts carries one session's execution context over the shared
// engine: its own virtual clock and UDF domain (breaker state, fault
// schedule), its own fault injector, and its query memory budget. Any
// nil field falls back to the engine's shared state. Sessions switches
// on the executor's shared-view protocol (store-view probing, per-key
// claims, per-batch publication) so concurrent sessions reuse one
// another's results instead of recomputing them.
type ExecOpts struct {
	Clock    *simclock.Clock
	Domain   *udf.Domain
	Faults   *faults.Injector
	Budget   *server.MemBudget
	Sessions bool
}

// ExecuteWith runs a SELECT with per-session execution options: costs
// are charged to the session's clock and UDF evaluation goes through
// the session's domain.
func (e *Engine) ExecuteWith(stmt *parser.SelectStmt, mode optimizer.Mode, opts ExecOpts) (*Outcome, error) {
	return e.execute(stmt, mode, false, opts)
}

func (e *Engine) execute(stmt *parser.SelectStmt, mode optimizer.Mode, traced bool, opts ExecOpts) (*Outcome, error) {
	clock := opts.Clock
	if clock == nil {
		clock = e.Clock
	}
	inj := opts.Faults
	if !opts.Sessions {
		inj = e.faults
	}
	// The optimizer is a small value over shared catalog/manager state;
	// a session run gets a shallow clone charging the session's clock
	// and consulting the session's breaker health.
	opt := e.Opt
	if opts.Clock != nil || opts.Domain != nil {
		c := *e.Opt
		c.Clock = clock
		if opts.Domain != nil {
			c.Health = opts.Domain
		}
		opt = &c
	}
	// Replan-on-breaker loop: when a model's circuit breaker trips
	// mid-execution, the plan's eval target is now known-unhealthy, so
	// re-optimizing lets the health filter re-run Algorithm 2 over the
	// remaining models implementing the logical task (graceful
	// degradation) instead of failing the query.
	for attempt := 0; ; attempt++ {
		optRes, err := opt.Optimize(stmt, mode)
		if err != nil {
			return nil, err
		}
		ctx := &exec.Context{
			Store: e.Store, Runtime: e.Runtime, Clock: clock,
			BatchSize: e.batchSize, Faults: inj, Deadline: e.Deadline,
			Workers: e.Workers, Pool: e.Pool,
			Domain: opts.Domain, Budget: opts.Budget, Sessions: opts.Sessions,
		}
		var trace *exec.Trace
		if traced {
			trace = exec.NewTrace()
			ctx.Trace = trace
		}
		rows, err := exec.Run(ctx, optRes.Plan)
		if err != nil {
			// ErrModelUnavailable: a breaker tripped, replan degrades
			// immediately. ErrEvalFailed: the failed run charged the
			// breaker; re-running either succeeds (fault passed) or
			// accumulates toward the trip that unlocks degradation.
			replannable := errors.Is(err, udf.ErrModelUnavailable) || errors.Is(err, udf.ErrEvalFailed)
			if replannable && attempt < maxReplans {
				continue
			}
			return nil, err
		}
		return &Outcome{Rows: rows, Plan: optRes.Plan, Report: optRes.Report, Trace: trace}, nil
	}
}

// Recycle returns a result batch to the engine's pool once the caller
// is done reading it. Safe to call with any batch: unpooled batches
// (or a nil pool) are left for the garbage collector. After Recycle
// the batch must not be touched — under the evadebug poison mode a
// stale read trips immediately.
func (e *Engine) Recycle(b *types.Batch) {
	if e.Pool != nil && b != nil && b.Pooled() {
		e.Pool.Put(b)
	}
}

// Plan runs only the optimization phase, without executing and without
// committing aggregated predicates (EXPLAIN).
func (e *Engine) Plan(stmt *parser.SelectStmt, mode optimizer.Mode) (*optimizer.Result, error) {
	mode.DryRun = true
	return e.Opt.Optimize(stmt, mode)
}

// Reset discards all materialized state: views, aggregated predicates,
// counters, and the clock.
func (e *Engine) Reset() error {
	if err := e.Store.DropViews(); err != nil {
		return err
	}
	e.Manager.Reset()
	e.Runtime.ResetCounters()
	e.Clock.Reset()
	return nil
}
