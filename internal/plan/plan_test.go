package plan

import (
	"strings"
	"testing"

	"eva/internal/expr"
	"eva/internal/types"
)

func scanNode() *Scan {
	return &Scan{Table: "video", Lo: 0, Hi: 100, Sch: types.MustSchema(
		types.Column{Name: "id", Kind: types.KindInt},
		types.Column{Name: "frame", Kind: types.KindBytes},
	)}
}

func TestReuseApplySchemaConcat(t *testing.T) {
	a := &ReuseApply{
		Input:    scanNode(),
		Eval:     "FasterRCNNResnet50",
		TableUDF: true,
		Out: types.MustSchema(
			types.Column{Name: "label", Kind: types.KindString},
			types.Column{Name: "bbox", Kind: types.KindString},
		),
		KeyCols: []string{"id"},
	}
	sch := a.Schema()
	if len(sch) != 4 || sch[2].Name != "label" {
		t.Errorf("schema = %s", sch)
	}
	// Cached on second call.
	if &a.Schema()[0] != &sch[0] {
		t.Error("schema should be memoized")
	}
	if !strings.Contains(a.Describe(), "CrossApply(FasterRCNNResnet50, no-reuse") {
		t.Errorf("describe = %q", a.Describe())
	}
	a.Sources = []ApplySource{{UDF: "x", ViewName: "v1"}}
	a.StoreView = "v1"
	a.TableUDF = false
	if d := a.Describe(); !strings.Contains(d, "ScalarApply") || !strings.Contains(d, "views=[v1]") || !strings.Contains(d, "store=v1") {
		t.Errorf("describe = %q", d)
	}
}

func TestProjectSchemaInference(t *testing.T) {
	p := &Project{Input: scanNode(), Items: []ProjItem{
		{Name: "id", E: expr.NewColumn("id")},
		{Name: "c", E: expr.NewConst(types.NewString("x"))},
		{Name: "b", E: expr.NewCmp(expr.OpGt, expr.NewColumn("id"), expr.NewConst(types.NewInt(1)))},
		{Name: "k", E: expr.NewCall("f"), Kind: types.KindFloat}, // explicit
		{Name: "g", E: expr.NewCall("g")},                        // inferred default
	}}
	sch := p.Schema()
	wantKinds := []types.Kind{types.KindInt, types.KindString, types.KindBool, types.KindFloat, types.KindString}
	for i, want := range wantKinds {
		if sch[i].Kind != want {
			t.Errorf("col %d kind = %v, want %v", i, sch[i].Kind, want)
		}
	}
	if !strings.Contains(p.Describe(), "AS id") {
		t.Errorf("describe = %q", p.Describe())
	}
}

func TestGroupBySchema(t *testing.T) {
	g := &GroupBy{
		Input: scanNode(),
		Keys:  []string{"id"},
		Aggs: []Agg{
			{Kind: AggCount, Name: "n"},
			{Kind: AggAvg, Arg: expr.NewColumn("id"), Name: "a"},
		},
	}
	sch := g.Schema()
	if len(sch) != 3 || sch[1].Kind != types.KindInt || sch[2].Kind != types.KindFloat {
		t.Errorf("schema = %s", sch)
	}
	if d := g.Describe(); !strings.Contains(d, "COUNT(*)") || !strings.Contains(d, "AVG(id)") {
		t.Errorf("describe = %q", d)
	}
}

func TestAggKindNames(t *testing.T) {
	names := map[AggKind]string{AggCount: "COUNT", AggSum: "SUM", AggAvg: "AVG", AggMin: "MIN", AggMax: "MAX"}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%v != %s", k, want)
		}
	}
}

func TestExplainTree(t *testing.T) {
	tree := &Limit{N: 5, Input: &Filter{
		Pred:  expr.NewCmp(expr.OpGt, expr.NewColumn("id"), expr.NewConst(types.NewInt(3))),
		Input: scanNode(),
	}}
	out := Explain(tree)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("explain lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Limit(5)") {
		t.Errorf("line 0 = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "  Filter(") {
		t.Errorf("line 1 = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "    Scan(video") {
		t.Errorf("line 2 = %q", lines[2])
	}
	if (&Filter{Input: scanNode()}).Schema().IndexOf("id") != 0 {
		t.Error("filter schema should pass through")
	}
	if (&Limit{Input: scanNode()}).Schema().IndexOf("frame") != 1 {
		t.Error("limit schema should pass through")
	}
}
