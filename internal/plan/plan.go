// Package plan defines EVA's physical query plans. The optimizer
// produces these trees; the execution engine interprets them.
//
// The reuse machinery of Fig. 4 (LEFT OUTER JOIN against the view, a
// conditional Apply guarded on missing values, and a STORE appending
// fresh results) is represented by the fused ReuseApply operator: its
// three phases are executed per input batch in exactly that order, and
// fusing them avoids materializing the NULL-marker intermediate (the
// same fusion a pipelined engine would perform).
package plan

import (
	"fmt"
	"strings"

	"eva/internal/expr"
	"eva/internal/types"
)

// Node is a physical plan operator.
//
// The implementations form a sealed set (*Scan, *Filter, *ReuseApply,
// *Project, *GroupBy, *Sort, *Limit); switches over Node must handle
// every variant.
//
// lint:exhaustive
type Node interface {
	Schema() types.Schema
	Children() []Node
	// Describe renders the operator (one line, without children).
	Describe() string
}

// Scan reads frames with id in [Lo, Hi) from a video table. The
// optimizer pushes id-range predicates into the bounds.
type Scan struct {
	Table string
	Sch   types.Schema
	Lo    int64
	Hi    int64 // exclusive; -1 means "to the end"
}

func (s *Scan) Schema() types.Schema { return s.Sch }
func (s *Scan) Children() []Node     { return nil }
func (s *Scan) Describe() string {
	return fmt.Sprintf("Scan(%s, id ∈ [%d, %d))", s.Table, s.Lo, s.Hi)
}

// Filter keeps rows satisfying the predicate.
type Filter struct {
	Input Node
	Pred  expr.Expr
}

func (f *Filter) Schema() types.Schema { return f.Input.Schema() }
func (f *Filter) Children() []Node     { return []Node{f.Input} }
func (f *Filter) Describe() string     { return fmt.Sprintf("Filter(%s)", f.Pred) }

// ApplySource is one materialized view a ReuseApply consults, tagged
// with the physical UDF that produced it (logical UDF reuse may select
// several; §4.3).
type ApplySource struct {
	UDF      string
	ViewName string
}

// ReuseApply evaluates a UDF per input row with materialized-view
// reuse. For each row it probes Sources in order; the first view that
// has processed the row's key serves the results (the LEFT OUTER JOIN
// arm of Fig. 4). Missing keys are evaluated with the Eval UDF (the
// conditional Apply arm) and, when StoreView is set, appended to that
// view (the STORE arm).
type ReuseApply struct {
	Input Node
	// Args are the UDF argument expressions over the input schema.
	Args []expr.Expr
	// Sources are the views to consult, in preference order. Empty
	// means no reuse (No-Reuse and FunCache modes).
	Sources []ApplySource
	// Eval is the physical UDF evaluated for keys missing everywhere.
	Eval string
	// StoreView names the view fresh results are appended to; empty
	// disables materialization.
	StoreView string
	// TableUDF selects CROSS APPLY semantics (one input row expands to
	// N output rows); otherwise the UDF is scalar (exactly one value).
	TableUDF bool
	// Out lists the columns the operator appends to the input schema.
	Out types.Schema
	// KeyCols are the invocation key columns (from the UDF signature).
	KeyCols []string
	// FuzzyBBox enables the §6 extension: when an exact key probe
	// misses and the key contains a bbox, reuse the stored result of
	// the spatially nearest bbox on the same frame (within tolerance).
	// Bounding boxes from different detector models for the same
	// object are close but not identical; fuzzy matching lets
	// dependent UDF results transfer across detectors.
	FuzzyBBox bool

	sch types.Schema
}

// Schema implements Node; the output schema is input ⊕ Out.
func (a *ReuseApply) Schema() types.Schema {
	if a.sch == nil {
		a.sch = a.Input.Schema().Concat(a.Out)
	}
	return a.sch
}

func (a *ReuseApply) Children() []Node { return []Node{a.Input} }

func (a *ReuseApply) Describe() string {
	kind := "ScalarApply"
	if a.TableUDF {
		kind = "CrossApply"
	}
	var srcs []string
	for _, s := range a.Sources {
		srcs = append(srcs, s.ViewName)
	}
	reuse := "no-reuse"
	if len(srcs) > 0 {
		reuse = "views=[" + strings.Join(srcs, ",") + "]"
	}
	store := ""
	if a.StoreView != "" {
		store = " store=" + a.StoreView
	}
	return fmt.Sprintf("%s(%s, %s%s, key=%v)", kind, a.Eval, reuse, store, a.KeyCols)
}

// ProjItem is one projection output column. Kind may be set by the
// optimizer when it knows the expression's type (e.g. a rewritten UDF
// output); KindNull means "infer structurally".
type ProjItem struct {
	Name string
	E    expr.Expr
	Kind types.Kind
}

// Project evaluates expressions into named output columns.
type Project struct {
	Input Node
	Items []ProjItem
	sch   types.Schema
}

// Schema implements Node.
func (p *Project) Schema() types.Schema {
	if p.sch == nil {
		for _, it := range p.Items {
			kind := it.Kind
			if kind == types.KindNull {
				kind = types.KindFloat
				switch e := it.E.(type) {
				case *expr.Column:
					kind = p.Input.Schema().KindOf(e.Name)
				case *expr.Const:
					kind = e.Val.Kind()
				case *expr.Cmp, *expr.Logic, *expr.Not, *expr.IsNull:
					kind = types.KindBool
				case *expr.Call:
					kind = types.KindString // refined by the optimizer when known
				default: // lint:nonexhaustive Arith and Star items keep the float default
				}
			}
			p.sch = append(p.sch, types.Column{Name: it.Name, Kind: kind})
		}
	}
	return p.sch
}

func (p *Project) Children() []Node { return []Node{p.Input} }
func (p *Project) Describe() string {
	parts := make([]string, len(p.Items))
	for i, it := range p.Items {
		parts[i] = fmt.Sprintf("%s AS %s", it.E, it.Name)
	}
	return "Project(" + strings.Join(parts, ", ") + ")"
}

// AggKind enumerates aggregate functions.
//
// lint:exhaustive
type AggKind int

// Aggregate functions.
const (
	AggCount AggKind = iota
	AggSum
	AggAvg
	AggMin
	AggMax
)

// String returns the SQL name.
func (k AggKind) String() string {
	switch k {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	default:
		return fmt.Sprintf("AggKind(%d)", int(k))
	}
}

// Agg is one aggregate output.
type Agg struct {
	Kind AggKind
	Arg  expr.Expr // nil for COUNT(*)
	Name string
}

// GroupBy groups rows by key columns and computes aggregates. With no
// keys it computes a single global aggregate row.
type GroupBy struct {
	Input Node
	Keys  []string
	Aggs  []Agg
	sch   types.Schema
}

// Schema implements Node.
func (g *GroupBy) Schema() types.Schema {
	if g.sch == nil {
		in := g.Input.Schema()
		for _, k := range g.Keys {
			g.sch = append(g.sch, types.Column{Name: k, Kind: in.KindOf(k)})
		}
		for _, a := range g.Aggs {
			kind := types.KindFloat
			if a.Kind == AggCount {
				kind = types.KindInt
			}
			g.sch = append(g.sch, types.Column{Name: a.Name, Kind: kind})
		}
	}
	return g.sch
}

func (g *GroupBy) Children() []Node { return []Node{g.Input} }
func (g *GroupBy) Describe() string {
	parts := make([]string, len(g.Aggs))
	for i, a := range g.Aggs {
		arg := "*"
		if a.Arg != nil {
			arg = a.Arg.String()
		}
		parts[i] = fmt.Sprintf("%s(%s)", a.Kind, arg)
	}
	return fmt.Sprintf("GroupBy(keys=%v, aggs=[%s])", g.Keys, strings.Join(parts, ", "))
}

// SortKey is one ordering column.
type SortKey struct {
	Col  string
	Desc bool
}

// Sort orders rows by the keys (a blocking operator).
type Sort struct {
	Input Node
	Keys  []SortKey
}

func (s *Sort) Schema() types.Schema { return s.Input.Schema() }
func (s *Sort) Children() []Node     { return []Node{s.Input} }
func (s *Sort) Describe() string {
	parts := make([]string, len(s.Keys))
	for i, k := range s.Keys {
		dir := "ASC"
		if k.Desc {
			dir = "DESC"
		}
		parts[i] = k.Col + " " + dir
	}
	return "Sort(" + strings.Join(parts, ", ") + ")"
}

// Limit caps the number of output rows.
type Limit struct {
	Input Node
	N     int64
}

func (l *Limit) Schema() types.Schema { return l.Input.Schema() }
func (l *Limit) Children() []Node     { return []Node{l.Input} }
func (l *Limit) Describe() string     { return fmt.Sprintf("Limit(%d)", l.N) }

// Explain renders the plan tree with indentation.
func Explain(n Node) string {
	var sb strings.Builder
	var walk func(Node, int)
	walk = func(node Node, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(node.Describe())
		sb.WriteByte('\n')
		for _, c := range node.Children() {
			walk(c, depth+1)
		}
	}
	walk(n, 0)
	return sb.String()
}
