package symbolic

import (
	"math/rand"
	"testing"
)

// Algebraic-law property tests over randomly generated predicates.
// randPredicate and the sample-point machinery live in dnf_test.go.

func samplePoints(r *rand.Rand, n int) []map[string]Value {
	out := make([]map[string]Value, n)
	cats := []string{"a", "b", "c", "d"}
	for i := range out {
		out[i] = map[string]Value{
			"x": Num(float64(r.Intn(24))/2 - 1),
			"y": Num(float64(r.Intn(24))/2 - 1),
			"c": Str(cats[r.Intn(len(cats))]),
		}
	}
	return out
}

func agree(t *testing.T, label string, a, b DNF, pts []map[string]Value) {
	t.Helper()
	for _, pt := range pts {
		va, err := a.Evaluate(pt)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		vb, err := b.Evaluate(pt)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if va != vb {
			t.Fatalf("%s: disagreement at %v\nA: %s\nB: %s", label, pt, a, b)
		}
	}
}

func TestReduceIsIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	for i := 0; i < 150; i++ {
		d, err := FromExpr(randPredicate(r, 3))
		if err != nil {
			t.Fatal(err)
		}
		once := Reduce(d)
		twice := Reduce(once)
		if once.AtomCount() != twice.AtomCount() || len(once.Conjuncts()) != len(twice.Conjuncts()) {
			t.Fatalf("iteration %d: reduce not idempotent\nonce:  %s\ntwice: %s", i, once, twice)
		}
	}
}

func TestNotIsInvolution(t *testing.T) {
	r := rand.New(rand.NewSource(102))
	for i := 0; i < 120; i++ {
		d, err := FromExpr(randPredicate(r, 2))
		if err != nil {
			t.Fatal(err)
		}
		pts := samplePoints(r, 24)
		// Reduce between the negations, as the engine itself always
		// does — an unreduced double negation explodes combinatorially.
		agree(t, "¬¬p == p", d, Reduce(Reduce(d.Not()).Not()), pts)
	}
}

func TestDeMorganLaws(t *testing.T) {
	r := rand.New(rand.NewSource(103))
	for i := 0; i < 120; i++ {
		p, err := FromExpr(randPredicate(r, 2))
		if err != nil {
			t.Fatal(err)
		}
		q, err := FromExpr(randPredicate(r, 2))
		if err != nil {
			t.Fatal(err)
		}
		pts := samplePoints(r, 24)
		agree(t, "¬(p∧q) == ¬p∨¬q", p.And(q).Not(), p.Not().Or(q.Not()), pts)
		agree(t, "¬(p∨q) == ¬p∧¬q", p.Or(q).Not(), p.Not().And(q.Not()), pts)
	}
}

func TestInterDiffPartitionUnion(t *testing.T) {
	// INTER(p,q) ∨ DIFF(p,q) must equal q, and they must be disjoint —
	// the invariant the Fig. 4 rewrite depends on (every gated tuple is
	// served exactly once: from the view or from evaluation).
	r := rand.New(rand.NewSource(104))
	for i := 0; i < 120; i++ {
		p, err := FromExpr(randPredicate(r, 2))
		if err != nil {
			t.Fatal(err)
		}
		q, err := FromExpr(randPredicate(r, 2))
		if err != nil {
			t.Fatal(err)
		}
		inter, diff := Inter(p, q), Diff(p, q)
		for _, pt := range samplePoints(r, 30) {
			inQ, _ := q.Evaluate(pt)
			inInter, _ := inter.Evaluate(pt)
			inDiff, _ := diff.Evaluate(pt)
			if inInter && inDiff {
				t.Fatalf("iteration %d: INTER and DIFF overlap at %v", i, pt)
			}
			if inQ != (inInter || inDiff) {
				t.Fatalf("iteration %d: INTER ∪ DIFF ≠ q at %v\np=%s\nq=%s", i, pt, p, q)
			}
		}
	}
}

func TestUnionIsCommutativeAndMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(105))
	for i := 0; i < 120; i++ {
		p, err := FromExpr(randPredicate(r, 2))
		if err != nil {
			t.Fatal(err)
		}
		q, err := FromExpr(randPredicate(r, 2))
		if err != nil {
			t.Fatal(err)
		}
		pts := samplePoints(r, 24)
		agree(t, "p∨q == q∨p", Union(p, q), Union(q, p), pts)
		// Union covers both operands.
		u := Union(p, q)
		for _, pt := range pts {
			inP, _ := p.Evaluate(pt)
			inU, _ := u.Evaluate(pt)
			if inP && !inU {
				t.Fatalf("union not monotone at %v", pt)
			}
		}
	}
}

func TestReduceBudgetTerminates(t *testing.T) {
	// A pathological many-disjunct predicate still reduces within the
	// budget (the paper's timeout analogue) and preserves semantics.
	r := rand.New(rand.NewSource(106))
	var d DNF
	first := true
	for i := 0; i < 12; i++ {
		p, err := FromExpr(randPredicate(r, 3))
		if err != nil {
			t.Fatal(err)
		}
		if first {
			d = p
			first = false
		} else {
			d = d.Or(p)
		}
	}
	reduced := ReduceWithBudget(d, 50)
	for _, pt := range samplePoints(r, 40) {
		a, _ := d.Evaluate(pt)
		b, _ := reduced.Evaluate(pt)
		if a != b {
			t.Fatalf("budgeted reduction changed semantics at %v", pt)
		}
	}
}
