package symbolic

import (
	"testing"

	"eva/internal/expr"
	"eva/internal/types"
)

func eqJoin(l, r expr.Expr) expr.Expr { return expr.NewCmp(expr.OpEq, l, r) }

func plus(c expr.Expr, k int64) expr.Expr {
	return expr.NewArith(expr.OpAdd, c, expr.NewConst(types.NewInt(k)))
}

func minus(c expr.Expr, k int64) expr.Expr {
	return expr.NewArith(expr.OpSub, c, expr.NewConst(types.NewInt(k)))
}

func TestAnalyzeJoinPredicates(t *testing.T) {
	aID := expr.NewColumn("a_id")
	bID := expr.NewColumn("b_id")
	tests := []struct {
		name   string
		p1, p2 expr.Expr
		want   JoinRelation
	}{
		{"identical", eqJoin(aID, bID), eqJoin(aID, bID), JoinEquivalent},
		{"shifted (paper Q1 vs Q2)", eqJoin(aID, bID), eqJoin(aID, plus(bID, 1)), JoinDisjoint},
		{"same shift", eqJoin(aID, plus(bID, 1)), eqJoin(aID, plus(bID, 1)), JoinEquivalent},
		{"plus vs minus", eqJoin(aID, plus(bID, 1)), eqJoin(aID, minus(bID, 1)), JoinDisjoint},
		{"minus normalizes", eqJoin(aID, minus(bID, 2)), eqJoin(aID, plus(bID, -2)), JoinEquivalent},
		{"mirrored spelling", eqJoin(plus(bID, 3), aID), eqJoin(aID, plus(bID, 3)), JoinEquivalent},
		{"different columns", eqJoin(aID, bID), eqJoin(aID, expr.NewColumn("b_ts")), JoinUnknown},
		{"non-affine (mod, paper Q3)", eqJoin(aID, bID), eqJoin(aID, expr.NewArith(expr.OpMod, bID, expr.NewConst(types.NewInt(2)))), JoinUnknown},
		{"inequality", expr.NewCmp(expr.OpLt, aID, bID), eqJoin(aID, bID), JoinUnknown},
	}
	for _, tt := range tests {
		if got := AnalyzeJoinPredicates(tt.p1, tt.p2); got != tt.want {
			t.Errorf("%s: %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestJoinRelationSemanticsBruteForce(t *testing.T) {
	// Verify the classifications against brute-force pair enumeration.
	aID := expr.NewColumn("a_id")
	bID := expr.NewColumn("b_id")
	cases := []struct {
		p1, p2 expr.Expr
	}{
		{eqJoin(aID, bID), eqJoin(aID, plus(bID, 1))},
		{eqJoin(aID, plus(bID, 2)), eqJoin(aID, plus(bID, 2))},
		{eqJoin(aID, minus(bID, 1)), eqJoin(aID, plus(bID, 1))},
	}
	evalPair := func(p expr.Expr, a, b int64) bool {
		res := expr.MapResolver{Cols: map[string]types.Datum{
			"a_id": types.NewInt(a), "b_id": types.NewInt(b),
		}}
		v, err := expr.EvalBool(p, res)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	for _, c := range cases {
		rel := AnalyzeJoinPredicates(c.p1, c.p2)
		bothSeen, onlyOne := false, false
		for a := int64(-5); a <= 5; a++ {
			for b := int64(-5); b <= 5; b++ {
				s1, s2 := evalPair(c.p1, a, b), evalPair(c.p2, a, b)
				if s1 && s2 {
					bothSeen = true
				}
				if s1 != s2 {
					onlyOne = true
				}
			}
		}
		switch rel {
		case JoinEquivalent:
			if onlyOne {
				t.Errorf("%s vs %s: declared equivalent but differ on some pair", c.p1, c.p2)
			}
		case JoinDisjoint:
			if bothSeen {
				t.Errorf("%s vs %s: declared disjoint but share a pair", c.p1, c.p2)
			}
		}
	}
}

func TestJoinReusableExplanations(t *testing.T) {
	aID := expr.NewColumn("a_id")
	bID := expr.NewColumn("b_id")
	ok, why := JoinReusable(eqJoin(aID, bID), eqJoin(aID, bID))
	if !ok || why == "" {
		t.Errorf("equivalent join: %v %q", ok, why)
	}
	ok, why = JoinReusable(eqJoin(aID, bID), eqJoin(aID, plus(bID, 1)))
	if ok {
		t.Errorf("disjoint join should not reuse: %q", why)
	}
	ok, _ = JoinReusable(expr.NewCmp(expr.OpLt, aID, bID), eqJoin(aID, bID))
	if ok {
		t.Error("unknown join relationship must default to no reuse")
	}
}

func TestJoinRelationString(t *testing.T) {
	if JoinEquivalent.String() != "equivalent" || JoinDisjoint.String() != "disjoint" || JoinUnknown.String() != "unknown" {
		t.Error("relation names")
	}
}
