package symbolic

import "sort"

// This file implements Algorithm 1 of the paper: predicate reduction.
// A DNF's conjuncts are first reduced independently (which our
// representation does by construction — per-term constraints are always
// normalized interval/categorical sets), then pairs of conjuncts are
// repeatedly combined when one is a subset of the other in at least
// N−1 of the N dimensions of their union, mirroring the three
// two-dimensional cases of Fig. 2:
//
//	(i)   full subset            → drop the smaller conjunct
//	(ii)  equal in all but one   → union the remaining dimension
//	(iii) subset in all but one  → carve the overlap out of the larger
//	                               region's remaining dimension, making
//	                               the pair disjoint
//
// The loop runs until a fixpoint or until the iteration budget is
// exhausted (the paper uses a wall-clock timeout; a deterministic
// iteration budget keeps runs reproducible).

// ReduceBudget bounds the pairwise-reduction work per Reduce call.
// The default is generous for the predicate sizes exploratory queries
// produce (tens of atoms).
const ReduceBudget = 10_000

// Reduce simplifies the predicate per Algorithm 1 and returns the
// reduced DNF. Reduction preserves semantics exactly.
func Reduce(d DNF) DNF {
	return ReduceWithBudget(d, ReduceBudget)
}

// ReduceWithBudget is Reduce with an explicit pairwise-work budget.
func ReduceWithBudget(d DNF, budget int) DNF {
	// Step 1-2: drop unsatisfiable conjuncts (per-conjunct reduction is
	// inherent in the normalized constraint representation).
	conjs := make([]Conjunct, 0, len(d.conjs))
	for _, c := range d.conjs {
		if !c.Empty() {
			conjs = append(conjs, c)
		}
	}

	// Step 3: pairwise cross-conjunct reduction until fixpoint/budget.
	changed := true
	for changed && budget > 0 {
		changed = false
		for i := 0; i < len(conjs) && budget > 0; i++ {
			for j := i + 1; j < len(conjs) && budget > 0; j++ {
				budget--
				a, b, act := reduceUnionConjunctives(conjs[i], conjs[j])
				switch act {
				case actNone:
					continue
				case actMerged:
					conjs[i] = a
					conjs = append(conjs[:j], conjs[j+1:]...)
					changed = true
					j--
				case actRewrote:
					conjs[i], conjs[j] = a, b
					if conjs[j].Empty() {
						conjs = append(conjs[:j], conjs[j+1:]...)
						j--
					}
					changed = true
				}
			}
		}
	}
	return DNF{conjs: conjs}
}

type reduceAction int

const (
	actNone reduceAction = iota
	actMerged
	actRewrote
)

// reduceUnionConjunctives implements ReduceUnionConjunctives of
// Algorithm 1 for a pair of conjuncts: it looks for a dimension such
// that one conjunct is a subset of the other in every *other* dimension,
// then reduces the union along the remaining dimension.
func reduceUnionConjunctives(c1, c2 Conjunct) (a, b Conjunct, act reduceAction) {
	dims := unionTerms(c1, c2)

	// Classify each dimension.
	var (
		diffDims     []string // dimensions where constraints differ
		c1SubAll     = true   // c1 ⊆ c2 on every dim
		c2SubAll     = true
		c1SubExcept  = 0 // count of dims where c1 ⊄ c2
		c2SubExcept  = 0
		c1NotSubDim  string
		c2NotSubDim  string
		typeConflict bool
	)
	for _, t := range dims {
		ref1, ok1 := c1.cons[t]
		ref2, ok2 := c2.cons[t]
		var a1, a2 Constraint
		switch {
		case ok1 && ok2:
			if ref1.typeMismatch(ref2) {
				typeConflict = true
			}
			a1, a2 = ref1, ref2
		case ok1:
			a1, a2 = ref1, fullLike(ref1)
		default:
			a1, a2 = fullLike(ref2), ref2
		}
		if typeConflict {
			return c1, c2, actNone
		}
		if !a1.Equal(a2) {
			diffDims = append(diffDims, t)
		}
		if !a1.SubsetOf(a2) {
			c1SubAll = false
			c1SubExcept++
			c1NotSubDim = t
		}
		if !a2.SubsetOf(a1) {
			c2SubAll = false
			c2SubExcept++
			c2NotSubDim = t
		}
	}

	// Case (i): full containment — drop the contained conjunct.
	if c1SubAll {
		return c2, c1, actMerged
	}
	if c2SubAll {
		return c1, c2, actMerged
	}

	// Case (ii): equal in all dims but one — union the differing dim.
	if len(diffDims) == 1 {
		t := diffDims[0]
		ref := c1.cons[t]
		if _, ok := c1.cons[t]; !ok {
			ref = c2.cons[t]
		}
		u, err := c1.get(t, ref).Union(c2.get(t, ref))
		if err != nil {
			// Mixed-kind constraints on one term: leave the pair
			// unreduced. Reduction is an optimization, so skipping a
			// step preserves semantics. (The typeConflict pre-check
			// above makes this unreachable in practice.)
			return c1, c2, actNone
		}
		merged := c1.clone()
		if u.Full() {
			delete(merged.cons, t)
		} else {
			merged.cons[t] = u
		}
		return merged, c2, actMerged
	}

	// Case (iii): c2 ⊆ c1 in all dims except exactly one — make the
	// conjuncts disjoint by removing c1's overlap from c2 along that
	// dimension (and symmetrically). Only worthwhile if they overlap.
	if c2SubExcept == 1 {
		return carveOverlap(c1, c2, c2NotSubDim)
	}
	if c1SubExcept == 1 {
		b2, a2, act := carveOverlap(c2, c1, c1NotSubDim)
		return a2, b2, act
	}
	return c1, c2, actNone
}

// carveOverlap handles case (iii): small ⊆ big in every dimension
// except dim; shrink small's dim-constraint by subtracting big's, which
// preserves the union while making the pair disjoint.
func carveOverlap(big, small Conjunct, dim string) (a, b Conjunct, act reduceAction) {
	ref, ok := big.cons[dim]
	if !ok {
		ref = small.cons[dim]
	}
	bigDim := big.get(dim, ref)
	smallDim := small.get(dim, ref)
	if bigDim.typeMismatch(smallDim) {
		return big, small, actNone
	}
	inter := smallDim.Intersect(bigDim)
	if inter.Empty() {
		return big, small, actNone // already disjoint along dim
	}
	var carved Constraint
	if smallDim.Numeric {
		carved = NumConstraint(smallDim.Ivs.Minus(bigDim.Ivs))
	} else {
		carved = CatConstraint(smallDim.Cat.Intersect(bigDim.Cat.Complement()))
	}
	// Reduction must be monotone in formula size: keep the carve only if
	// it does not inflate the conjunct (it always preserves semantics,
	// but carving an unconstrained dimension would add atoms).
	if !carved.Empty() && carved.AtomCount() > smallDim.AtomCount() {
		return big, small, actNone
	}
	out := small.clone()
	out.cons[dim] = carved
	return big, out, actRewrote
}

func unionTerms(c1, c2 Conjunct) []string {
	set := map[string]struct{}{}
	for t := range c1.cons {
		set[t] = struct{}{}
	}
	for t := range c2.cons {
		set[t] = struct{}{}
	}
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	// Deterministic order for reproducible reductions.
	sort.Strings(out)
	return out
}

// Inter returns the reduced intersection predicate INTER(p1, p2) = p1 ∧ p2:
// the tuples where a new invocation may reuse materialized results (§3.2).
func Inter(p1, p2 DNF) DNF { return Reduce(p1.And(p2)) }

// Diff returns the reduced difference predicate DIFF(p1, p2) = ¬p1 ∧ p2:
// the tuples where reuse is not possible and the UDF must run (§3.2).
func Diff(p1, p2 DNF) DNF { return Reduce(p1.Not().And(p2)) }

// Union returns the reduced union predicate UNION(p1, p2) = p1 ∨ p2:
// the tuples with materialized results after both invocations (§3.2).
func Union(p1, p2 DNF) DNF { return Reduce(p1.Or(p2)) }
