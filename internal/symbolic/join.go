package symbolic

// Symbolic analysis of equality join predicates — the §6 extension.
// The paper notes that join predicates complicate UDF-centric reuse:
// Π_UDF(A ⋈_{A.id=B.id} B) and Π_UDF(A ⋈_{A.id=B.id+1} B) share no
// reusable pairs even though the predicates look similar, while other
// pairs subsume each other. This file analyzes affine equality joins
// of the form `left = right + c` (and `left = right`) and classifies
// the relationship between two such predicates, which is what the
// optimizer needs to decide whether UDF results computed over one join
// are reusable under another.

import (
	"fmt"
	"strings"

	"eva/internal/expr"
	"eva/internal/types"
)

// JoinRelation classifies two equality-join predicates.
//
// lint:exhaustive
type JoinRelation int

// Join predicate relationships.
const (
	// JoinUnknown: the analyzer cannot decide; assume no reuse.
	JoinUnknown JoinRelation = iota
	// JoinEquivalent: the predicates select exactly the same pairs —
	// UDF results are fully reusable.
	JoinEquivalent
	// JoinDisjoint: no pair satisfies both predicates — no reuse
	// opportunity exists (the paper's Q1 vs Q2 case).
	JoinDisjoint
)

// String renders the relation.
func (r JoinRelation) String() string {
	switch r {
	case JoinEquivalent:
		return "equivalent"
	case JoinDisjoint:
		return "disjoint"
	case JoinUnknown:
		return "unknown"
	default:
		return "unknown"
	}
}

// affineJoin is a normalized join predicate: left = right + offset.
type affineJoin struct {
	Left   string
	Right  string
	Offset int64
}

// parseAffineJoin normalizes an equality comparison into the affine
// form when possible. Supported shapes: `a = b`, `a = b + c`,
// `a = b - c`, and the mirrored spellings.
func parseAffineJoin(e expr.Expr) (affineJoin, bool) {
	cmp, ok := e.(*expr.Cmp)
	if !ok || cmp.Op != expr.OpEq {
		return affineJoin{}, false
	}
	l, lok := colTerm(cmp.L)
	if lok {
		if r, off, rok := colPlusConst(cmp.R); rok {
			return affineJoin{Left: l, Right: r, Offset: off}, true
		}
	}
	r, rok := colTerm(cmp.R)
	if rok {
		if l2, off, lok2 := colPlusConst(cmp.L); lok2 {
			// l2 + off = r  ⇔  r = l2 + off; normalize left = right+offset.
			return affineJoin{Left: r, Right: l2, Offset: off}, true
		}
	}
	return affineJoin{}, false
}

func colTerm(e expr.Expr) (string, bool) {
	c, ok := e.(*expr.Column)
	if !ok {
		return "", false
	}
	return strings.ToLower(c.Name), true
}

// colPlusConst matches `col`, `col + c`, and `col - c`.
func colPlusConst(e expr.Expr) (string, int64, bool) {
	if c, ok := colTerm(e); ok {
		return c, 0, true
	}
	ar, ok := e.(*expr.Arith)
	if !ok || (ar.Op != expr.OpAdd && ar.Op != expr.OpSub) {
		return "", 0, false
	}
	col, ok := colTerm(ar.L)
	if !ok {
		return "", 0, false
	}
	k, ok := ar.R.(*expr.Const)
	if !ok || k.Val.Kind() != types.KindInt {
		return "", 0, false
	}
	off := k.Val.Int()
	if ar.Op == expr.OpSub {
		off = -off
	}
	return col, off, true
}

// AnalyzeJoinPredicates classifies the relationship between two
// equality-join predicates. For affine joins over the same column
// pair, `a = b + c1` and `a = b + c2` are equivalent iff c1 = c2 and
// provably disjoint otherwise; anything else is Unknown (which the
// caller must treat as "no reuse", the safe default).
func AnalyzeJoinPredicates(p1, p2 expr.Expr) JoinRelation {
	if expr.Equal(p1, p2) {
		return JoinEquivalent
	}
	a1, ok1 := parseAffineJoin(p1)
	a2, ok2 := parseAffineJoin(p2)
	if !ok1 || !ok2 {
		return JoinUnknown
	}
	if a1.Left != a2.Left || a1.Right != a2.Right {
		// Different column pairs (or swapped sides): not comparable
		// without schema knowledge.
		return JoinUnknown
	}
	if a1.Offset == a2.Offset {
		return JoinEquivalent
	}
	// Same column pair, different offsets: a row pair satisfying both
	// would need right+c1 = right+c2 with c1 ≠ c2 — impossible.
	return JoinDisjoint
}

// JoinReusable reports whether UDF results materialized over the join
// with predicate prev may serve the join with predicate next, with an
// explanation for EXPLAIN-style output.
func JoinReusable(prev, next expr.Expr) (bool, string) {
	rel := AnalyzeJoinPredicates(prev, next)
	switch rel {
	case JoinEquivalent:
		return true, "join predicates are equivalent; UDF results fully reusable"
	case JoinDisjoint:
		return false, "join predicates are provably disjoint; no reuse opportunity"
	case JoinUnknown:
		return false, "join predicate relationship unknown; conservatively not reused"
	default:
		return false, fmt.Sprintf("join predicate relationship %s; conservatively not reused", rel)
	}
}
