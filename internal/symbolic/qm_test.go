package symbolic

import (
	"testing"

	"eva/internal/expr"
	"eva/internal/types"
)

func TestQMSimplifyBooleanIdentities(t *testing.T) {
	a := cmp(expr.OpGt, col("x"), num(5))
	b := cmp(expr.OpLt, col("y"), num(3))

	// a ∨ (a ∧ b) = a  (absorption — QM handles this).
	res, err := QMSimplify(or(a, and(a, b)))
	if err != nil {
		t.Fatal(err)
	}
	if res.AtomCount != 1 {
		t.Errorf("absorption: atoms = %d, want 1", res.AtomCount)
	}

	// a ∧ ¬a = FALSE.
	res, err = QMSimplify(and(a, expr.NewNot(a)))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Implicants) != 0 || res.AtomCount != 0 {
		t.Errorf("contradiction: %+v", res)
	}

	// a ∨ ¬a = TRUE (single empty implicant).
	res, err = QMSimplify(or(a, expr.NewNot(a)))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Implicants) != 1 || len(res.Implicants[0]) != 0 {
		t.Errorf("tautology: %+v", res)
	}
}

func TestQMCannotReasonAboutIntervals(t *testing.T) {
	// The defining blind spot (Fig. 7): x>6 ∨ x>9 is 2 opaque atoms to
	// QM but 1 atom to EVA's reducer.
	e := or(cmp(expr.OpGt, col("x"), num(6)), cmp(expr.OpGt, col("x"), num(9)))
	res, err := QMSimplify(e)
	if err != nil {
		t.Fatal(err)
	}
	if res.AtomCount != 2 {
		t.Errorf("QM atoms = %d, want 2 (cannot merge inequalities)", res.AtomCount)
	}
	d := mustDNF(t, e)
	if got := Reduce(d).AtomCount(); got != 1 {
		t.Errorf("EVA atoms = %d, want 1", got)
	}
}

func TestQMXorStructure(t *testing.T) {
	a := cmp(expr.OpGt, col("x"), num(1))
	b := cmp(expr.OpGt, col("y"), num(1))
	xor := or(and(a, expr.NewNot(b)), and(expr.NewNot(a), b))
	res, err := QMSimplify(xor)
	if err != nil {
		t.Fatal(err)
	}
	// XOR is not reducible: two implicants of two literals each.
	if len(res.Implicants) != 2 || res.AtomCount != 4 {
		t.Errorf("xor: implicants=%d atoms=%d, want 2/4", len(res.Implicants), res.AtomCount)
	}
}

func TestQMConsensusReduction(t *testing.T) {
	// (a∧b) ∨ (¬a∧c) ∨ (b∧c): consensus term b∧c is redundant.
	a := cmp(expr.OpGt, col("x"), num(1))
	b := cmp(expr.OpGt, col("y"), num(1))
	c := cmp(expr.OpEq, col("c"), str("v"))
	e := or(or(and(a, b), and(expr.NewNot(a), c)), and(b, c))
	res, err := QMSimplify(e)
	if err != nil {
		t.Fatal(err)
	}
	if res.AtomCount != 4 {
		t.Errorf("consensus: atoms = %d, want 4 ((a∧b) ∨ (¬a∧c))", res.AtomCount)
	}
}

func TestQMGivesUpBeyondMaxVars(t *testing.T) {
	var e expr.Expr
	for i := 0; i < QMMaxVars+1; i++ {
		atom := cmp(expr.OpGt, col("x"), num(float64(i)))
		if e == nil {
			e = atom
		} else {
			e = or(e, atom)
		}
	}
	res, err := QMSimplify(e)
	if err != nil {
		t.Fatal(err)
	}
	if !res.GaveUp {
		t.Error("should give up beyond QMMaxVars")
	}
	if res.AtomCount != QMMaxVars+1 {
		t.Errorf("gave-up atom count = %d, want %d", res.AtomCount, QMMaxVars+1)
	}
}

func TestQMNilAndConst(t *testing.T) {
	res, err := QMSimplify(nil)
	if err != nil || res.AtomCount != 0 {
		t.Errorf("nil: %+v, %v", res, err)
	}
	// A boolean constant is treated as an opaque atom by the opaque
	// evaluator; just ensure no error and sane output.
	if _, err := QMSimplify(expr.NewConst(types.NewBool(true))); err != nil {
		t.Errorf("const: %v", err)
	}
}

func TestSelectivityUniform(t *testing.T) {
	stats := UniformStats{Lo: 0, Hi: 100, DomainSize: 4}
	d := mustDNF(t, cmp(expr.OpLt, col("x"), num(25)))
	if got := Selectivity(d, stats); got < 0.24 || got > 0.26 {
		t.Errorf("sel(x<25) = %v, want 0.25", got)
	}
	d = mustDNF(t, and(cmp(expr.OpLt, col("x"), num(50)), cmp(expr.OpEq, col("c"), str("a"))))
	if got := Selectivity(d, stats); got < 0.12 || got > 0.13 {
		t.Errorf("sel = %v, want 0.125", got)
	}
	// Disjunction with overlap correction: x<50 ∨ x<25 reduces to x<50.
	d = Reduce(mustDNF(t, or(cmp(expr.OpLt, col("x"), num(50)), cmp(expr.OpLt, col("x"), num(25)))))
	if got := Selectivity(d, stats); got < 0.49 || got > 0.51 {
		t.Errorf("sel = %v, want 0.5", got)
	}
	if got := Selectivity(False(), stats); got != 0 {
		t.Errorf("sel(FALSE) = %v", got)
	}
	if got := Selectivity(True(), stats); got != 1 {
		t.Errorf("sel(TRUE) = %v", got)
	}
	// Unreduced overlapping disjuncts: inclusion-exclusion keeps it ≈ 0.5.
	d1 := mustDNF(t, cmp(expr.OpLt, col("x"), num(50)))
	d2 := mustDNF(t, cmp(expr.OpLt, col("x"), num(25)))
	if got := Selectivity(d1.Or(d2), stats); got < 0.49 || got > 0.51 {
		t.Errorf("inclusion-exclusion sel = %v, want 0.5", got)
	}
}

func TestSelectivityCategoricalNegation(t *testing.T) {
	stats := UniformStats{Lo: 0, Hi: 1, DomainSize: 5}
	d := mustDNF(t, cmp(expr.OpNe, col("c"), str("a")))
	if got := Selectivity(d, stats); got < 0.79 || got > 0.81 {
		t.Errorf("sel(c != a) = %v, want 0.8", got)
	}
}
