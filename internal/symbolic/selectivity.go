package symbolic

// Stats supplies per-term value distributions for selectivity
// estimation. The catalog implements it with histograms built at load
// time (for table columns) and with profiled output distributions (for
// UDF result terms), following the paper's use of histogram-based
// selectivity estimation from traditional DBMSs (§4.2).
type Stats interface {
	// SelNumeric estimates the fraction of tuples whose value for term
	// falls in the interval set.
	SelNumeric(term string, ivs IntervalSet) float64
	// SelCategorical estimates the fraction of tuples whose value for
	// term satisfies the categorical constraint.
	SelCategorical(term string, cat CatSet) float64
}

// Selectivity estimates the fraction of tuples satisfying the predicate
// under the usual attribute-independence assumption: conjunct
// selectivity is the product of per-term selectivities, and — because
// Reduce leaves conjuncts (nearly) disjoint — the DNF selectivity is
// the capped sum over conjuncts with a first-order overlap correction
// for small disjunct counts.
func Selectivity(d DNF, stats Stats) float64 {
	if d.IsFalse() {
		return 0
	}
	sels := make([]float64, len(d.conjs))
	for i, c := range d.conjs {
		sels[i] = conjunctSelectivity(c, stats)
	}
	total := 0.0
	for _, s := range sels {
		total += s
	}
	// First-order inclusion-exclusion correction, affordable for the
	// small disjunct counts reduction produces.
	if len(d.conjs) > 1 && len(d.conjs) <= 8 {
		for i := 0; i < len(d.conjs); i++ {
			for j := i + 1; j < len(d.conjs); j++ {
				inter := d.conjs[i].Intersect(d.conjs[j])
				if !inter.Empty() {
					total -= conjunctSelectivity(inter, stats)
				}
			}
		}
	}
	return clamp01(total)
}

func conjunctSelectivity(c Conjunct, stats Stats) float64 {
	sel := 1.0
	for _, t := range c.Terms() {
		con := c.cons[t]
		var s float64
		if con.Numeric {
			s = stats.SelNumeric(t, con.Ivs)
		} else {
			s = stats.SelCategorical(t, con.Cat)
		}
		sel *= clamp01(s)
	}
	return sel
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// UniformStats is a Stats implementation over a uniform numeric range
// and a uniform categorical domain; useful for tests and as a fallback
// when no histogram exists for a term.
type UniformStats struct {
	// Lo, Hi bound the assumed numeric domain.
	Lo, Hi float64
	// DomainSize is the assumed number of distinct categorical values.
	DomainSize int
}

// SelNumeric implements Stats assuming a uniform distribution on [Lo, Hi].
func (u UniformStats) SelNumeric(_ string, ivs IntervalSet) float64 {
	width := u.Hi - u.Lo
	if width <= 0 {
		return 1
	}
	covered := 0.0
	for _, iv := range ivs.Intervals() {
		lo, hi := iv.Lo, iv.Hi
		if lo < u.Lo {
			lo = u.Lo
		}
		if hi > u.Hi {
			hi = u.Hi
		}
		if hi > lo {
			covered += hi - lo
		}
	}
	return clamp01(covered / width)
}

// SelCategorical implements Stats assuming DomainSize equally likely values.
func (u UniformStats) SelCategorical(_ string, cat CatSet) float64 {
	n := u.DomainSize
	if n <= 0 {
		n = 10
	}
	frac := float64(len(cat.Vals)) / float64(n)
	if cat.Negated {
		return clamp01(1 - frac)
	}
	return clamp01(frac)
}
