package symbolic

import (
	"math"
	"testing"
	"testing/quick"
)

func iv(lo, hi float64, loOpen, hiOpen bool) Interval {
	return Interval{Lo: lo, Hi: hi, LoOpen: loOpen, HiOpen: hiOpen}
}

func TestIntervalEmpty(t *testing.T) {
	tests := []struct {
		iv   Interval
		want bool
	}{
		{iv(1, 2, false, false), false},
		{iv(2, 1, false, false), true},
		{Point(5), false},
		{iv(5, 5, true, false), true},
		{iv(5, 5, false, true), true},
		{FullInterval, false},
	}
	for _, tt := range tests {
		if got := tt.iv.Empty(); got != tt.want {
			t.Errorf("%v.Empty() = %v, want %v", tt.iv, got, tt.want)
		}
	}
}

func TestIntervalContains(t *testing.T) {
	i := iv(1, 3, true, false) // (1, 3]
	for _, tc := range []struct {
		v    float64
		want bool
	}{{1, false}, {1.5, true}, {3, true}, {3.1, false}, {0, false}} {
		if got := i.Contains(tc.v); got != tc.want {
			t.Errorf("(1,3].Contains(%v) = %v, want %v", tc.v, got, tc.want)
		}
	}
}

func TestIntervalSetNormalization(t *testing.T) {
	// Overlapping and adjacent intervals merge; disjoint ones don't.
	s := NewIntervalSet(iv(0, 2, false, false), iv(1, 3, false, false), iv(5, 6, false, false))
	if got := len(s.Intervals()); got != 2 {
		t.Fatalf("normalized to %d intervals (%s), want 2", got, s)
	}
	// [a,b) ∪ [b,c] is contiguous.
	s2 := NewIntervalSet(iv(0, 1, false, true), iv(1, 2, false, false))
	if len(s2.Intervals()) != 1 {
		t.Errorf("[0,1) ∪ [1,2] should merge: %s", s2)
	}
	// (a,b) ∪ (b,c) leaves the seam uncovered.
	s3 := NewIntervalSet(iv(0, 1, true, true), iv(1, 2, true, true))
	if len(s3.Intervals()) != 2 {
		t.Errorf("(0,1) ∪ (1,2) should not merge: %s", s3)
	}
	if s3.Contains(1) {
		t.Error("seam point should be excluded")
	}
	// [a,b) ∪ [b,c): point b covered by second.
	s4 := NewIntervalSet(iv(0, 1, false, true), iv(1, 2, false, true))
	if len(s4.Intervals()) != 1 || !s4.Contains(1) {
		t.Errorf("[0,1) ∪ [1,2) should merge: %s", s4)
	}
}

func TestIntervalSetOps(t *testing.T) {
	a := NewIntervalSet(iv(5, 15, true, true))  // (5, 15)
	b := NewIntervalSet(iv(10, 20, true, true)) // (10, 20)
	u := a.Union(b)
	if len(u.Intervals()) != 1 || !u.Contains(12) || u.Contains(5) || u.Contains(20) {
		t.Errorf("union = %s", u)
	}
	i := a.Intersect(b)
	if !i.Contains(12) || i.Contains(9) || i.Contains(16) {
		t.Errorf("intersect = %s", i)
	}
	m := a.Minus(b)
	if !m.Contains(7) || m.Contains(12) {
		t.Errorf("minus = %s", m)
	}
	if !i.SubsetOf(a) || !i.SubsetOf(b) || a.SubsetOf(b) {
		t.Error("subset relations wrong")
	}
}

func TestIntervalSetComplement(t *testing.T) {
	s := NewIntervalSet(iv(0, 1, false, false), iv(2, 3, true, true))
	c := s.Complement()
	for _, tc := range []struct {
		v    float64
		want bool
	}{{-1, true}, {0, false}, {0.5, false}, {1, false}, {1.5, true}, {2, true}, {2.5, false}, {3, true}, {4, true}} {
		if got := c.Contains(tc.v); got != tc.want {
			t.Errorf("complement.Contains(%v) = %v, want %v", tc.v, got, tc.want)
		}
	}
	if !s.Complement().Complement().Equal(s) {
		t.Error("double complement not identity")
	}
	if !FullIntervalSet().Complement().Empty() {
		t.Error("complement of full should be empty")
	}
	if !(IntervalSet{}).Complement().Full() {
		t.Error("complement of empty should be full")
	}
}

func TestIntervalSetAtomCount(t *testing.T) {
	tests := []struct {
		s    IntervalSet
		want int
	}{
		{IntervalSet{}, 0},
		{FullIntervalSet(), 0},
		{NewIntervalSet(Point(5)), 1},
		{NewIntervalSet(iv(0, 1, false, false)), 2},
		{NewIntervalSet(iv(math.Inf(-1), 5, true, true)), 1},
		{NewIntervalSet(iv(0, 1, false, false), iv(3, 4, false, false)), 4},
	}
	for _, tt := range tests {
		if got := tt.s.AtomCount(); got != tt.want {
			t.Errorf("%s.AtomCount() = %d, want %d", tt.s, got, tt.want)
		}
	}
}

// randomSet builds a small interval set from quick-generated values.
func randomSet(vals []float64) IntervalSet {
	var ivs []Interval
	for i := 0; i+1 < len(vals); i += 2 {
		lo, hi := vals[i], vals[i+1]
		if lo > hi {
			lo, hi = hi, lo
		}
		ivs = append(ivs, iv(lo, hi, len(vals)%2 == 0, len(vals)%3 == 0))
	}
	return NewIntervalSet(ivs...)
}

func TestIntervalSetAlgebraQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	probe := []float64{-10, -1, 0, 0.5, 1, 2, 3, 5, 7, 10, 100}
	f := func(a8, b8 [8]float64) bool {
		a, b := randomSet(a8[:]), randomSet(b8[:])
		for _, v := range probe {
			if a.Union(b).Contains(v) != (a.Contains(v) || b.Contains(v)) {
				return false
			}
			if a.Intersect(b).Contains(v) != (a.Contains(v) && b.Contains(v)) {
				return false
			}
			if a.Complement().Contains(v) != !a.Contains(v) {
				return false
			}
			if a.Minus(b).Contains(v) != (a.Contains(v) && !b.Contains(v)) {
				return false
			}
		}
		if a.SubsetOf(a.Union(b)) != true {
			return false
		}
		return a.Intersect(b).SubsetOf(a)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestCatSetOps(t *testing.T) {
	a := NewCatSet("Nissan", "Toyota")
	b := NewCatSet("Toyota", "Ford")
	if got := a.Intersect(b); !got.Contains("Toyota") || got.Contains("Nissan") {
		t.Errorf("intersect = %s", got)
	}
	if got := a.Union(b); !got.Contains("Ford") || got.Contains("BMW") {
		t.Errorf("union = %s", got)
	}
	nb := NewCatSetNot("Ford")
	// a ∪ ¬{Ford}: everything except nothing-of-Ford-minus-a... i.e. ∉ {Ford}\{Nissan,Toyota} = ∉{Ford}
	u := a.Union(nb)
	if u.Contains("Ford") || !u.Contains("BMW") || !u.Contains("Nissan") {
		t.Errorf("allowed ∪ excluded = %s", u)
	}
	i := a.Intersect(nb)
	if !i.Contains("Nissan") || i.Contains("Ford") {
		t.Errorf("allowed ∩ excluded = %s", i)
	}
	nn := NewCatSetNot("Nissan").Intersect(NewCatSetNot("Toyota"))
	if nn.Contains("Nissan") || nn.Contains("Toyota") || !nn.Contains("Ford") {
		t.Errorf("excluded ∩ excluded = %s", nn)
	}
	uu := NewCatSetNot("Nissan", "Ford").Union(NewCatSetNot("Nissan", "Toyota"))
	if uu.Contains("Nissan") || !uu.Contains("Ford") || !uu.Contains("Toyota") {
		t.Errorf("excluded ∪ excluded = %s", uu)
	}
}

func TestCatSetPredicates(t *testing.T) {
	if !NewCatSet().Empty() || NewCatSet("x").Empty() {
		t.Error("Empty wrong")
	}
	if !FullCatSet().Full() || NewCatSetNot("x").Full() {
		t.Error("Full wrong")
	}
	if !NewCatSet("a").SubsetOf(NewCatSet("a", "b")) {
		t.Error("subset wrong")
	}
	if NewCatSetNot("a").SubsetOf(NewCatSet("a", "b")) {
		t.Error("cofinite not subset of finite")
	}
	if !NewCatSet("b").SubsetOf(NewCatSetNot("a")) {
		t.Error("{b} ⊆ ¬{a}")
	}
	if !NewCatSet("a", "b").Equal(NewCatSet("b", "a")) {
		t.Error("equality order-sensitive")
	}
	if NewCatSet("a").Equal(NewCatSetNot("a")) {
		t.Error("negation equality")
	}
	if got := NewCatSet("a", "b").AtomCount(); got != 2 {
		t.Errorf("AtomCount = %d", got)
	}
	if got := FullCatSet().AtomCount(); got != 0 {
		t.Errorf("full AtomCount = %d", got)
	}
	if !NewCatSet("a").Complement().Contains("b") || NewCatSet("a").Complement().Contains("a") {
		t.Error("complement wrong")
	}
}

func TestConstraintBridging(t *testing.T) {
	n := NumConstraint(NewIntervalSet(iv(0, 10, false, false)))
	c := CatConstraint(NewCatSet("car"))
	if !n.typeMismatch(c) {
		t.Error("mismatch not detected")
	}
	if got := n.Intersect(c); !got.Empty() {
		t.Error("mismatched intersect should be empty")
	}
	if !n.SubsetOf(NumConstraint(FullIntervalSet())) {
		t.Error("subset of full")
	}
	if c.SubsetOf(n) {
		t.Error("mismatched subset should be false for nonempty")
	}
	if ok, err := n.containsValue(Num(5)); err != nil || !ok {
		t.Errorf("containsValue(5) = %v, %v", ok, err)
	}
	if _, err := n.containsValue(Str("x")); err == nil {
		t.Error("type confusion should error")
	}
	if ok, err := c.containsValue(Str("car")); err != nil || !ok {
		t.Errorf("cat containsValue = %v, %v", ok, err)
	}
	if _, err := c.containsValue(Num(1)); err == nil {
		t.Error("type confusion should error")
	}
}
