// Package symbolic implements EVA's symbolic predicate engine (§4.1 of
// the paper): a small computer-algebra system over typed atomic
// predicates (numeric intervals and categorical sets), disjunctive
// normal form, the INTER/DIFF/UNION derived predicates, and the
// predicate-reduction procedure of Algorithm 1.
//
// It substitutes for the SymPy engine used by the paper's Python
// implementation; the subset of symbolic computing EVA relies on —
// inequality solving over one dimension at a time plus boolean
// structure — is implemented natively and exactly.
package symbolic

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Interval is a (possibly unbounded, possibly degenerate) interval over
// the reals. Lo/Hi may be ±Inf; LoOpen/HiOpen select open endpoints.
type Interval struct {
	Lo, Hi         float64
	LoOpen, HiOpen bool
}

// FullInterval covers the entire real line.
var FullInterval = Interval{Lo: math.Inf(-1), Hi: math.Inf(1), LoOpen: true, HiOpen: true}

// Point returns the degenerate interval [v, v].
func Point(v float64) Interval { return Interval{Lo: v, Hi: v} }

// Empty reports whether the interval contains no points.
func (iv Interval) Empty() bool {
	if iv.Lo > iv.Hi {
		return true
	}
	if iv.Lo == iv.Hi && (iv.LoOpen || iv.HiOpen) {
		return true
	}
	return false
}

// Contains reports whether v lies in the interval.
func (iv Interval) Contains(v float64) bool {
	if v < iv.Lo || (v == iv.Lo && iv.LoOpen) {
		return false
	}
	if v > iv.Hi || (v == iv.Hi && iv.HiOpen) {
		return false
	}
	return true
}

// intersect returns the intersection of two intervals.
func (iv Interval) intersect(o Interval) Interval {
	out := iv
	if o.Lo > out.Lo || (o.Lo == out.Lo && o.LoOpen) {
		out.Lo, out.LoOpen = o.Lo, o.LoOpen
	}
	if o.Hi < out.Hi || (o.Hi == out.Hi && o.HiOpen) {
		out.Hi, out.HiOpen = o.Hi, o.HiOpen
	}
	return out
}

// overlapsOrTouches reports whether the union of the two intervals is a
// single interval (they intersect or are adjacent with a covered seam).
func (iv Interval) overlapsOrTouches(o Interval) bool {
	if iv.Empty() || o.Empty() {
		return false
	}
	a, b := iv, o
	if b.Lo < a.Lo || (b.Lo == a.Lo && !b.LoOpen && a.LoOpen) {
		a, b = b, a
	}
	// a starts first; union is contiguous unless there is a gap before b.
	if b.Lo < a.Hi {
		return true
	}
	if b.Lo == a.Hi {
		// Adjacent: seam covered unless both endpoints open.
		return !(a.HiOpen && b.LoOpen)
	}
	return false
}

// hull returns the smallest interval covering both (valid only when
// overlapsOrTouches).
func (iv Interval) hull(o Interval) Interval {
	out := iv
	if o.Lo < out.Lo || (o.Lo == out.Lo && !o.LoOpen) {
		out.Lo, out.LoOpen = o.Lo, o.LoOpen
	}
	if o.Hi > out.Hi || (o.Hi == out.Hi && !o.HiOpen) {
		out.Hi, out.HiOpen = o.Hi, o.HiOpen
	}
	return out
}

// String renders the interval in mathematical notation.
func (iv Interval) String() string {
	lb, rb := "[", "]"
	if iv.LoOpen {
		lb = "("
	}
	if iv.HiOpen {
		rb = ")"
	}
	return fmt.Sprintf("%s%g, %g%s", lb, iv.Lo, iv.Hi, rb)
}

// IntervalSet is a normalized union of disjoint, non-adjacent, non-empty
// intervals in ascending order. The zero value is the empty set.
type IntervalSet struct {
	ivs []Interval
}

// NewIntervalSet builds a normalized set from arbitrary intervals.
func NewIntervalSet(ivs ...Interval) IntervalSet {
	keep := make([]Interval, 0, len(ivs))
	for _, iv := range ivs {
		if !iv.Empty() {
			keep = append(keep, iv)
		}
	}
	sort.Slice(keep, func(i, j int) bool {
		a, b := keep[i], keep[j]
		if a.Lo != b.Lo {
			return a.Lo < b.Lo
		}
		return !a.LoOpen && b.LoOpen
	})
	var out []Interval
	for _, iv := range keep {
		if n := len(out); n > 0 && out[n-1].overlapsOrTouches(iv) {
			out[n-1] = out[n-1].hull(iv)
		} else {
			out = append(out, iv)
		}
	}
	return IntervalSet{ivs: out}
}

// FullIntervalSet covers all reals.
func FullIntervalSet() IntervalSet { return NewIntervalSet(FullInterval) }

// Empty reports whether the set contains no points.
func (s IntervalSet) Empty() bool { return len(s.ivs) == 0 }

// Full reports whether the set covers all reals.
func (s IntervalSet) Full() bool {
	return len(s.ivs) == 1 && math.IsInf(s.ivs[0].Lo, -1) && math.IsInf(s.ivs[0].Hi, 1)
}

// Intervals returns the normalized component intervals (read-only).
func (s IntervalSet) Intervals() []Interval { return s.ivs }

// Contains reports whether v lies in the set.
func (s IntervalSet) Contains(v float64) bool {
	for _, iv := range s.ivs {
		if iv.Contains(v) {
			return true
		}
	}
	return false
}

// Union returns the union of two sets.
func (s IntervalSet) Union(o IntervalSet) IntervalSet {
	all := make([]Interval, 0, len(s.ivs)+len(o.ivs))
	all = append(all, s.ivs...)
	all = append(all, o.ivs...)
	return NewIntervalSet(all...)
}

// Intersect returns the intersection of two sets.
func (s IntervalSet) Intersect(o IntervalSet) IntervalSet {
	var out []Interval
	for _, a := range s.ivs {
		for _, b := range o.ivs {
			if c := a.intersect(b); !c.Empty() {
				out = append(out, c)
			}
		}
	}
	return NewIntervalSet(out...)
}

// Complement returns the complement of the set over the reals.
func (s IntervalSet) Complement() IntervalSet {
	if s.Empty() {
		return FullIntervalSet()
	}
	var out []Interval
	lo, loOpen := math.Inf(-1), true
	for _, iv := range s.ivs {
		gap := Interval{Lo: lo, LoOpen: loOpen, Hi: iv.Lo, HiOpen: !iv.LoOpen}
		if !gap.Empty() {
			out = append(out, gap)
		}
		lo, loOpen = iv.Hi, !iv.HiOpen
	}
	last := Interval{Lo: lo, LoOpen: loOpen, Hi: math.Inf(1), HiOpen: true}
	if !last.Empty() {
		out = append(out, last)
	}
	return NewIntervalSet(out...)
}

// Minus returns s \ o.
func (s IntervalSet) Minus(o IntervalSet) IntervalSet {
	return s.Intersect(o.Complement())
}

// SubsetOf reports whether every point of s lies in o.
func (s IntervalSet) SubsetOf(o IntervalSet) bool {
	return s.Minus(o).Empty()
}

// Equal reports set equality.
func (s IntervalSet) Equal(o IntervalSet) bool {
	if len(s.ivs) != len(o.ivs) {
		return false
	}
	for i := range s.ivs {
		if s.ivs[i] != o.ivs[i] {
			return false
		}
	}
	return true
}

// AtomCount counts the atomic comparison formulas needed to express the
// set: one per finite endpoint, except a degenerate point interval
// (equality) counts once. Fig. 7 plots this quantity.
func (s IntervalSet) AtomCount() int {
	n := 0
	for _, iv := range s.ivs {
		if iv.Lo == iv.Hi {
			n++ // equality atom
			continue
		}
		if !math.IsInf(iv.Lo, -1) {
			n++
		}
		if !math.IsInf(iv.Hi, 1) {
			n++
		}
	}
	return n
}

// String renders the set as a union of intervals.
func (s IntervalSet) String() string {
	if s.Empty() {
		return "∅"
	}
	parts := make([]string, len(s.ivs))
	for i, iv := range s.ivs {
		parts[i] = iv.String()
	}
	return strings.Join(parts, " ∪ ")
}
