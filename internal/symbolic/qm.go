package symbolic

import (
	"fmt"
	"math/bits"
	"sort"

	"eva/internal/expr"
)

// This file implements the Fig. 7 baseline: a Quine–McCluskey boolean
// minimizer that — like SymPy's `simplify` — treats every atomic
// predicate as an opaque boolean variable. It therefore cannot see
// that `x < 10000` subsumes `x < 5000`, which is exactly the blind
// spot the paper contrasts EVA's interval-aware reducer against.

// QMMaxVars bounds the number of distinct atoms the minimizer handles;
// beyond it the formula is returned unsimplified (mirroring `simplify`
// giving up on large inputs and the predicate growing over time).
const QMMaxVars = 16

// QMResult is the outcome of a Quine–McCluskey minimization.
type QMResult struct {
	// Atoms are the distinct atomic predicates, in first-seen order.
	Atoms []string
	// Implicants are the selected prime implicants; each maps an atom
	// index to the required truth value.
	Implicants []map[int]bool
	// AtomCount is the number of literals across implicants — the
	// quantity Fig. 7 plots.
	AtomCount int
	// GaveUp reports that the formula exceeded QMMaxVars and was
	// returned unsimplified.
	GaveUp bool
}

// QMSimplify minimizes a boolean predicate treating each atomic
// sub-expression (comparison, call, column, IS NULL) as an opaque
// variable, using Quine–McCluskey prime-implicant generation with a
// greedy cover.
func QMSimplify(e expr.Expr) (QMResult, error) {
	if e == nil {
		return QMResult{}, nil
	}
	atoms, order := collectAtoms(e)
	n := len(order)
	if n > QMMaxVars {
		return QMResult{Atoms: order, AtomCount: countLiterals(e), GaveUp: true}, nil
	}

	// Enumerate minterms.
	var minterms []uint32
	for m := uint32(0); m < 1<<n; m++ {
		v, err := evalOpaque(e, atoms, m)
		if err != nil {
			return QMResult{}, err
		}
		if v {
			minterms = append(minterms, m)
		}
	}
	if len(minterms) == 0 {
		return QMResult{Atoms: order}, nil // FALSE
	}
	if len(minterms) == 1<<n {
		return QMResult{Atoms: order, Implicants: []map[int]bool{{}}}, nil // TRUE
	}

	primes := primeImplicants(minterms, n)
	chosen := greedyCover(primes, minterms)

	res := QMResult{Atoms: order}
	for _, p := range chosen {
		imp := map[int]bool{}
		for b := 0; b < n; b++ {
			if p.mask&(1<<b) == 0 {
				imp[b] = p.value&(1<<b) != 0
			}
		}
		res.Implicants = append(res.Implicants, imp)
		res.AtomCount += len(imp)
	}
	return res, nil
}

// implicant is a cube: bits set in mask are "don't care".
type implicant struct {
	value, mask uint32
}

func (p implicant) covers(m uint32) bool {
	return (m &^ p.mask) == (p.value &^ p.mask)
}

func primeImplicants(minterms []uint32, _ int) []implicant {
	current := make(map[implicant]struct{}, len(minterms))
	for _, m := range minterms {
		current[implicant{value: m}] = struct{}{}
	}
	var primes []implicant
	for len(current) > 0 {
		next := map[implicant]struct{}{}
		combined := map[implicant]bool{}
		list := make([]implicant, 0, len(current))
		for p := range current {
			list = append(list, p)
		}
		// Prime order feeds the cover search's tie-breaking; sort so the
		// minimized DNF is identical on every run.
		sort.Slice(list, func(i, j int) bool {
			if list[i].mask != list[j].mask {
				return list[i].mask < list[j].mask
			}
			return list[i].value < list[j].value
		})
		for i := 0; i < len(list); i++ {
			for j := i + 1; j < len(list); j++ {
				a, b := list[i], list[j]
				if a.mask != b.mask {
					continue
				}
				diff := (a.value ^ b.value) &^ a.mask
				if bits.OnesCount32(diff) != 1 {
					continue
				}
				merged := implicant{value: a.value &^ diff, mask: a.mask | diff}
				next[merged] = struct{}{}
				combined[a] = true
				combined[b] = true
			}
		}
		for _, p := range list {
			if !combined[p] {
				primes = append(primes, p)
			}
		}
		current = next
	}
	return primes
}

func greedyCover(primes []implicant, minterms []uint32) []implicant {
	// Deterministic order: wider cubes (more don't-cares) first, then by value.
	sort.Slice(primes, func(i, j int) bool {
		ci, cj := bits.OnesCount32(primes[i].mask), bits.OnesCount32(primes[j].mask)
		if ci != cj {
			return ci > cj
		}
		if primes[i].value != primes[j].value {
			return primes[i].value < primes[j].value
		}
		return primes[i].mask < primes[j].mask
	})
	uncovered := make(map[uint32]struct{}, len(minterms))
	for _, m := range minterms {
		uncovered[m] = struct{}{}
	}
	var chosen []implicant
	for len(uncovered) > 0 {
		best, bestCount := -1, 0
		for i, p := range primes {
			count := 0
			for m := range uncovered {
				if p.covers(m) {
					count++
				}
			}
			if count > bestCount {
				best, bestCount = i, count
			}
		}
		if best < 0 {
			break // unreachable when primes cover all minterms
		}
		chosen = append(chosen, primes[best])
		for m := range uncovered {
			if primes[best].covers(m) {
				delete(uncovered, m)
			}
		}
	}
	return chosen
}

// collectAtoms maps each distinct atomic sub-expression to a bit index.
func collectAtoms(e expr.Expr) (map[string]int, []string) {
	atoms := map[string]int{}
	var order []string
	var walk func(expr.Expr)
	walk = func(n expr.Expr) {
		switch t := n.(type) {
		case *expr.Logic:
			walk(t.L)
			walk(t.R)
		case *expr.Not:
			walk(t.E)
		default: // lint:nonexhaustive every non-connective node is an opaque atom
			key := n.String()
			if _, ok := atoms[key]; !ok {
				atoms[key] = len(order)
				order = append(order, key)
			}
		}
	}
	walk(e)
	return atoms, order
}

// evalOpaque evaluates the boolean structure of e under the atom
// assignment encoded in mask m.
func evalOpaque(e expr.Expr, atoms map[string]int, m uint32) (bool, error) {
	switch t := e.(type) {
	case *expr.Logic:
		l, err := evalOpaque(t.L, atoms, m)
		if err != nil {
			return false, err
		}
		r, err := evalOpaque(t.R, atoms, m)
		if err != nil {
			return false, err
		}
		if t.Op == expr.OpAnd {
			return l && r, nil
		}
		return l || r, nil
	case *expr.Not:
		v, err := evalOpaque(t.E, atoms, m)
		return !v, err
	default: // lint:nonexhaustive every non-connective node is an opaque atom
		idx, ok := atoms[e.String()]
		if !ok {
			return false, fmt.Errorf("symbolic: unregistered atom %q", e)
		}
		return m&(1<<idx) != 0, nil
	}
}

// countLiterals counts atomic predicate occurrences in an expression,
// the formula size reported when the minimizer gives up.
func countLiterals(e expr.Expr) int {
	switch t := e.(type) {
	case *expr.Logic:
		return countLiterals(t.L) + countLiterals(t.R)
	case *expr.Not:
		return countLiterals(t.E)
	case nil:
		return 0
	default: // lint:nonexhaustive every non-connective node counts as one literal
		return 1
	}
}
