package symbolic

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"eva/internal/expr"
	"eva/internal/types"
)

// Conjunct is a conjunction of per-term constraints: a product region.
// A term absent from the map is unconstrained. The empty conjunct is
// the always-true predicate.
type Conjunct struct {
	cons map[string]Constraint
}

// NewConjunct returns the always-true conjunct.
func NewConjunct() Conjunct { return Conjunct{cons: map[string]Constraint{}} }

// WithConstraint returns a copy of the conjunct with term ∧= c.
func (c Conjunct) WithConstraint(term string, con Constraint) Conjunct {
	out := c.clone()
	if existing, ok := out.cons[term]; ok {
		con = existing.Intersect(con)
	}
	if con.Full() {
		delete(out.cons, term)
	} else {
		out.cons[term] = con
	}
	return out
}

func (c Conjunct) clone() Conjunct {
	out := Conjunct{cons: make(map[string]Constraint, len(c.cons))}
	for k, v := range c.cons {
		out.cons[k] = v
	}
	return out
}

// Terms returns the constrained term names in sorted order.
func (c Conjunct) Terms() []string {
	out := make([]string, 0, len(c.cons))
	for t := range c.cons {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Constraint returns the constraint on term; (full, false) if absent.
func (c Conjunct) Constraint(term string) (Constraint, bool) {
	con, ok := c.cons[term]
	return con, ok
}

// get returns the constraint on term, substituting a full constraint of
// the same kind as ref when absent.
func (c Conjunct) get(term string, ref Constraint) Constraint {
	if con, ok := c.cons[term]; ok {
		return con
	}
	return fullLike(ref)
}

// Empty reports whether the conjunct is unsatisfiable.
func (c Conjunct) Empty() bool {
	for _, con := range c.cons {
		if con.Empty() {
			return true
		}
	}
	return false
}

// Intersect returns the conjunction of two conjuncts.
func (c Conjunct) Intersect(o Conjunct) Conjunct {
	out := c.clone()
	for t, con := range o.cons {
		if existing, ok := out.cons[t]; ok {
			out.cons[t] = existing.Intersect(con)
		} else {
			out.cons[t] = con
		}
	}
	return out
}

// SubsetOf reports whether every point satisfying c satisfies o.
func (c Conjunct) SubsetOf(o Conjunct) bool {
	if c.Empty() {
		return true
	}
	for t, ocon := range o.cons {
		if !c.get(t, ocon).SubsetOf(ocon) {
			return false
		}
	}
	return true
}

// Equal reports whether the conjuncts constrain identically.
func (c Conjunct) Equal(o Conjunct) bool {
	return c.SubsetOf(o) && o.SubsetOf(c)
}

// AtomCount counts the atomic formulas in the conjunct.
func (c Conjunct) AtomCount() int {
	n := 0
	for _, con := range c.cons {
		n += con.AtomCount()
	}
	return n
}

// Evaluate reports whether the sample point satisfies the conjunct.
func (c Conjunct) Evaluate(point map[string]Value) (bool, error) {
	for t, con := range c.cons {
		v, ok := point[t]
		if !ok {
			return false, fmt.Errorf("symbolic: no sample value for term %q", t)
		}
		in, err := con.containsValue(v)
		if err != nil {
			return false, fmt.Errorf("term %q: %w", t, err)
		}
		if !in {
			return false, nil
		}
	}
	return true, nil
}

// String renders the conjunct.
func (c Conjunct) String() string {
	if len(c.cons) == 0 {
		return "TRUE"
	}
	terms := c.Terms()
	parts := make([]string, len(terms))
	for i, t := range terms {
		parts[i] = t + " " + c.cons[t].String()
	}
	return strings.Join(parts, " ∧ ")
}

// DNF is a predicate in disjunctive normal form: a union of conjuncts.
// The zero value (no conjuncts) is FALSE; a DNF containing the empty
// conjunct is TRUE.
type DNF struct {
	conjs []Conjunct
}

// False is the unsatisfiable predicate.
func False() DNF { return DNF{} }

// True is the tautological predicate.
func True() DNF { return DNF{conjs: []Conjunct{NewConjunct()}} }

// FromConjuncts builds a DNF from conjuncts, dropping unsatisfiable ones.
func FromConjuncts(conjs ...Conjunct) DNF {
	out := DNF{}
	for _, c := range conjs {
		if !c.Empty() {
			out.conjs = append(out.conjs, c)
		}
	}
	return out
}

// Conjuncts returns the component conjuncts (read-only).
func (d DNF) Conjuncts() []Conjunct { return d.conjs }

// IsFalse reports whether the predicate is unsatisfiable.
func (d DNF) IsFalse() bool { return len(d.conjs) == 0 }

// IsTrue reports whether the predicate is a tautology (some conjunct
// has no constraints).
func (d DNF) IsTrue() bool {
	for _, c := range d.conjs {
		if len(c.cons) == 0 {
			return true
		}
	}
	return false
}

// Terms returns the union of term names across conjuncts, sorted.
func (d DNF) Terms() []string {
	set := map[string]struct{}{}
	for _, c := range d.conjs {
		for t := range c.cons {
			set[t] = struct{}{}
		}
	}
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Or returns d ∨ o (unreduced).
func (d DNF) Or(o DNF) DNF {
	out := DNF{conjs: make([]Conjunct, 0, len(d.conjs)+len(o.conjs))}
	out.conjs = append(out.conjs, d.conjs...)
	out.conjs = append(out.conjs, o.conjs...)
	return out
}

// And returns d ∧ o by pairwise conjunct intersection.
func (d DNF) And(o DNF) DNF {
	var out DNF
	for _, a := range d.conjs {
		for _, b := range o.conjs {
			if c := a.Intersect(b); !c.Empty() {
				out.conjs = append(out.conjs, c)
			}
		}
	}
	return out
}

// Not returns ¬d by complementing each conjunct (a union of per-term
// complements) and conjoining the results.
func (d DNF) Not() DNF {
	out := True()
	for _, c := range d.conjs {
		var comp DNF
		if len(c.cons) == 0 {
			return False() // ¬TRUE
		}
		for _, t := range c.Terms() {
			con := c.cons[t]
			neg := con.Complement()
			if neg.Empty() {
				continue
			}
			comp.conjs = append(comp.conjs, NewConjunct().WithConstraint(t, neg))
		}
		out = out.And(comp)
	}
	return out
}

// AtomCount counts the atomic formulas across all conjuncts; Fig. 7's
// y-axis plots this quantity for the derived predicates.
func (d DNF) AtomCount() int {
	n := 0
	for _, c := range d.conjs {
		n += c.AtomCount()
	}
	return n
}

// Evaluate reports whether the sample point satisfies the predicate.
func (d DNF) Evaluate(point map[string]Value) (bool, error) {
	for _, c := range d.conjs {
		ok, err := c.Evaluate(point)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// String renders the DNF.
func (d DNF) String() string {
	if d.IsFalse() {
		return "FALSE"
	}
	parts := make([]string, len(d.conjs))
	for i, c := range d.conjs {
		parts[i] = "(" + c.String() + ")"
	}
	return strings.Join(parts, " ∨ ")
}

// opaqueTruthy is the categorical value representing "this opaque
// boolean atom holds"; opaque atoms arise from predicates the interval
// algebra cannot type (e.g. string ordering, bare boolean columns).
const opaqueTruthy = "⊤"

// FromExpr converts a predicate expression into DNF. Comparisons must
// have a constant on one side; the other side becomes the term (its
// canonical rendering names the dimension). Predicates outside the
// col-op-const shape become opaque atoms, which still participate in
// boolean reasoning but not interval reasoning. A nil expression is TRUE.
//
// FromExpr returns an error when the same term is constrained both
// numerically and categorically, which indicates a typing bug upstream.
func FromExpr(e expr.Expr) (DNF, error) {
	if e == nil {
		return True(), nil
	}
	d, err := fromExpr(e, false)
	if err != nil {
		return False(), err
	}
	if err := d.checkTypes(); err != nil {
		return False(), err
	}
	return d, nil
}

func (d DNF) checkTypes() error {
	kinds := map[string]bool{} // term -> numeric?
	for _, c := range d.conjs {
		for t, con := range c.cons {
			if prev, seen := kinds[t]; seen && prev != con.Numeric {
				return fmt.Errorf("symbolic: term %q used both numerically and categorically", t)
			}
			kinds[t] = con.Numeric
		}
	}
	return nil
}

func fromExpr(e expr.Expr, negated bool) (DNF, error) {
	switch n := e.(type) {
	case *expr.Const:
		if n.Val.Kind() == types.KindBool {
			if n.Val.Bool() != negated {
				return True(), nil
			}
			return False(), nil
		}
		return False(), fmt.Errorf("symbolic: non-boolean constant %s as predicate", n.Val)
	case *expr.Logic:
		l, err := fromExpr(n.L, negated)
		if err != nil {
			return False(), err
		}
		r, err := fromExpr(n.R, negated)
		if err != nil {
			return False(), err
		}
		// De Morgan: negation swaps the connective.
		if (n.Op == expr.OpAnd) != negated {
			return l.And(r), nil
		}
		return l.Or(r), nil
	case *expr.Not:
		return fromExpr(n.E, !negated)
	case *expr.Cmp:
		return atomFromCmp(n, negated)
	case *expr.IsNull:
		return opaqueAtom(n.String(), negated), nil
	case *expr.Column:
		return opaqueAtom(n.String(), negated), nil
	case *expr.Call:
		return opaqueAtom(n.String(), negated), nil
	default: // lint:nonexhaustive Arith/Star cannot appear as boolean predicates; rejected with an error
		return False(), fmt.Errorf("symbolic: unsupported predicate node %T (%s)", e, e)
	}
}

func opaqueAtom(term string, negated bool) DNF {
	var cat CatSet
	if negated {
		cat = NewCatSetNot(opaqueTruthy)
	} else {
		cat = NewCatSet(opaqueTruthy)
	}
	return FromConjuncts(NewConjunct().WithConstraint(term, CatConstraint(cat)))
}

func atomFromCmp(c *expr.Cmp, negated bool) (DNF, error) {
	op, term, con := c.Op, c.L, c.R
	if _, lIsConst := term.(*expr.Const); lIsConst {
		term, con = con, term
		op = op.Flip()
	}
	k, ok := con.(*expr.Const)
	if !ok {
		// term-vs-term comparison: opaque atom.
		return opaqueAtom(c.String(), negated), nil
	}
	if negated {
		nop, err := op.Negate()
		if err != nil {
			return False(), err
		}
		op = nop
	}
	name := term.String()
	val := k.Val
	switch val.Kind() {
	case types.KindInt, types.KindFloat:
		v := val.Float()
		var ivs IntervalSet
		switch op {
		case expr.OpEq:
			ivs = NewIntervalSet(Point(v))
		case expr.OpNe:
			ivs = NewIntervalSet(Point(v)).Complement()
		case expr.OpLt:
			ivs = NewIntervalSet(Interval{Lo: negInf(), LoOpen: true, Hi: v, HiOpen: true})
		case expr.OpLe:
			ivs = NewIntervalSet(Interval{Lo: negInf(), LoOpen: true, Hi: v})
		case expr.OpGt:
			ivs = NewIntervalSet(Interval{Lo: v, LoOpen: true, Hi: posInf(), HiOpen: true})
		case expr.OpGe:
			ivs = NewIntervalSet(Interval{Lo: v, Hi: posInf(), HiOpen: true})
		}
		return FromConjuncts(NewConjunct().WithConstraint(name, NumConstraint(ivs))), nil
	case types.KindString:
		s := val.Str()
		switch op {
		case expr.OpEq:
			return FromConjuncts(NewConjunct().WithConstraint(name, CatConstraint(NewCatSet(s)))), nil
		case expr.OpNe:
			return FromConjuncts(NewConjunct().WithConstraint(name, CatConstraint(NewCatSetNot(s)))), nil
		default: // lint:nonexhaustive ordered string comparisons collapse to one opaque atom
			// (negation was already folded into op above).
			return opaqueAtom(fmt.Sprintf("%s %s %s", name, op, val), false), nil
		}
	case types.KindBool:
		want := val.Bool() == (op == expr.OpEq)
		if op != expr.OpEq && op != expr.OpNe {
			return False(), fmt.Errorf("symbolic: ordered comparison with boolean in %q", c)
		}
		return opaqueAtom(name, !want), nil
	default:
		return False(), fmt.Errorf("symbolic: unsupported constant kind %s in %q", val.Kind(), c)
	}
}

func negInf() float64 { return math.Inf(-1) }

func posInf() float64 { return math.Inf(1) }
