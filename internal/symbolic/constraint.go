package symbolic

import (
	"fmt"
	"sort"
	"strings"
)

// CatSet is a constraint over a categorical (string-valued) term: either
// "value ∈ Vals" (Negated = false) or "value ∉ Vals" (Negated = true).
// Because the domain is treated as unbounded, a negated set is never
// empty and an allowed set is never full.
//
// The algebra is closed: unions, intersections, and complements of
// CatSets are CatSets, so per-dimension reduction is always exact.
type CatSet struct {
	Negated bool
	Vals    map[string]struct{}
}

// NewCatSet returns "value ∈ vals".
func NewCatSet(vals ...string) CatSet {
	m := make(map[string]struct{}, len(vals))
	for _, v := range vals {
		m[v] = struct{}{}
	}
	return CatSet{Vals: m}
}

// NewCatSetNot returns "value ∉ vals".
func NewCatSetNot(vals ...string) CatSet {
	s := NewCatSet(vals...)
	s.Negated = true
	return s
}

// FullCatSet matches every value.
func FullCatSet() CatSet { return CatSet{Negated: true, Vals: map[string]struct{}{}} }

// Empty reports whether the constraint matches no value.
func (c CatSet) Empty() bool { return !c.Negated && len(c.Vals) == 0 }

// Full reports whether the constraint matches every value.
func (c CatSet) Full() bool { return c.Negated && len(c.Vals) == 0 }

// Contains reports whether v satisfies the constraint.
func (c CatSet) Contains(v string) bool {
	_, in := c.Vals[v]
	return in != c.Negated
}

func setOps(a, b map[string]struct{}) (inter, aMinusB, bMinusA, union map[string]struct{}) {
	inter = map[string]struct{}{}
	aMinusB = map[string]struct{}{}
	bMinusA = map[string]struct{}{}
	union = map[string]struct{}{}
	for v := range a {
		union[v] = struct{}{}
		if _, ok := b[v]; ok {
			inter[v] = struct{}{}
		} else {
			aMinusB[v] = struct{}{}
		}
	}
	for v := range b {
		union[v] = struct{}{}
		if _, ok := a[v]; !ok {
			bMinusA[v] = struct{}{}
		}
	}
	return
}

// Intersect returns a ∧ b.
func (c CatSet) Intersect(o CatSet) CatSet {
	inter, aMinusB, bMinusA, union := setOps(c.Vals, o.Vals)
	switch {
	case !c.Negated && !o.Negated:
		return CatSet{Vals: inter}
	case !c.Negated && o.Negated:
		return CatSet{Vals: aMinusB}
	case c.Negated && !o.Negated:
		return CatSet{Vals: bMinusA}
	default:
		return CatSet{Negated: true, Vals: union}
	}
}

// Union returns a ∨ b.
func (c CatSet) Union(o CatSet) CatSet {
	inter, aMinusB, bMinusA, union := setOps(c.Vals, o.Vals)
	switch {
	case !c.Negated && !o.Negated:
		return CatSet{Vals: union}
	case !c.Negated && o.Negated:
		// v∈A ∨ v∉B  ⇔  v ∉ (B \ A)
		return CatSet{Negated: true, Vals: bMinusA}
	case c.Negated && !o.Negated:
		return CatSet{Negated: true, Vals: aMinusB}
	default:
		return CatSet{Negated: true, Vals: inter}
	}
}

// Complement returns ¬c.
func (c CatSet) Complement() CatSet {
	vals := make(map[string]struct{}, len(c.Vals))
	for v := range c.Vals {
		vals[v] = struct{}{}
	}
	return CatSet{Negated: !c.Negated, Vals: vals}
}

// SubsetOf reports whether every value satisfying c also satisfies o.
func (c CatSet) SubsetOf(o CatSet) bool {
	return c.Intersect(o.Complement()).Empty()
}

// Equal reports constraint equality.
func (c CatSet) Equal(o CatSet) bool {
	if c.Negated != o.Negated || len(c.Vals) != len(o.Vals) {
		return false
	}
	for v := range c.Vals {
		if _, ok := o.Vals[v]; !ok {
			return false
		}
	}
	return true
}

// AtomCount counts atomic =/!= formulas needed to express the set.
func (c CatSet) AtomCount() int {
	if c.Full() {
		return 0
	}
	return len(c.Vals)
}

func (c CatSet) sorted() []string {
	out := make([]string, 0, len(c.Vals))
	for v := range c.Vals {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// String renders the constraint.
func (c CatSet) String() string {
	if c.Full() {
		return "any"
	}
	if c.Empty() {
		return "∅"
	}
	op := "∈"
	if c.Negated {
		op = "∉"
	}
	return op + " {" + strings.Join(c.sorted(), ", ") + "}"
}

// Constraint is the per-term building block of a conjunctive predicate:
// either a numeric interval set or a categorical set.
type Constraint struct {
	Numeric bool
	Ivs     IntervalSet
	Cat     CatSet
}

// NumConstraint wraps an interval set.
func NumConstraint(ivs IntervalSet) Constraint { return Constraint{Numeric: true, Ivs: ivs} }

// CatConstraint wraps a categorical set.
func CatConstraint(c CatSet) Constraint { return Constraint{Cat: c} }

// FullConstraint returns the unconstrained constraint matching the kind
// of the receiver's domain.
func fullLike(c Constraint) Constraint {
	if c.Numeric {
		return NumConstraint(FullIntervalSet())
	}
	return CatConstraint(FullCatSet())
}

// Empty reports whether no value satisfies the constraint.
func (c Constraint) Empty() bool {
	if c.Numeric {
		return c.Ivs.Empty()
	}
	return c.Cat.Empty()
}

// Full reports whether every value satisfies the constraint.
func (c Constraint) Full() bool {
	if c.Numeric {
		return c.Ivs.Full()
	}
	return c.Cat.Full()
}

// typeMismatch reports a numeric/categorical clash on the same term;
// the conjunctive combining them is unsatisfiable by typing.
func (c Constraint) typeMismatch(o Constraint) bool { return c.Numeric != o.Numeric }

// Intersect returns c ∧ o; a type mismatch yields an empty constraint.
func (c Constraint) Intersect(o Constraint) Constraint {
	if c.typeMismatch(o) {
		return Constraint{Numeric: c.Numeric} // empty of c's kind
	}
	if c.Numeric {
		return NumConstraint(c.Ivs.Intersect(o.Ivs))
	}
	return CatConstraint(c.Cat.Intersect(o.Cat))
}

// Union returns c ∨ o. A type mismatch — the same term constrained
// both numerically and categorically — is reported as an error;
// FromExpr rejects such predicates, so seeing one here means the
// caller combined constraints from incompatible sources.
func (c Constraint) Union(o Constraint) (Constraint, error) {
	if c.typeMismatch(o) {
		return Constraint{}, fmt.Errorf("symbolic: union of mismatched constraint kinds")
	}
	if c.Numeric {
		return NumConstraint(c.Ivs.Union(o.Ivs)), nil
	}
	return CatConstraint(c.Cat.Union(o.Cat)), nil
}

// Complement returns ¬c.
func (c Constraint) Complement() Constraint {
	if c.Numeric {
		return NumConstraint(c.Ivs.Complement())
	}
	return CatConstraint(c.Cat.Complement())
}

// SubsetOf reports whether c implies o.
func (c Constraint) SubsetOf(o Constraint) bool {
	if c.typeMismatch(o) {
		return c.Empty()
	}
	if c.Numeric {
		return c.Ivs.SubsetOf(o.Ivs)
	}
	return c.Cat.SubsetOf(o.Cat)
}

// Equal reports constraint equality.
func (c Constraint) Equal(o Constraint) bool {
	if c.typeMismatch(o) {
		return false
	}
	if c.Numeric {
		return c.Ivs.Equal(o.Ivs)
	}
	return c.Cat.Equal(o.Cat)
}

// AtomCount counts the atomic formulas needed to express the constraint.
func (c Constraint) AtomCount() int {
	if c.Numeric {
		return c.Ivs.AtomCount()
	}
	return c.Cat.AtomCount()
}

// String renders the constraint.
func (c Constraint) String() string {
	if c.Numeric {
		return c.Ivs.String()
	}
	return c.Cat.String()
}

// ContainsDatumLike reports whether a sample value satisfies the
// constraint; numeric constraints take the float form, categorical the
// string form. Used by the property-test evaluator.
func (c Constraint) containsValue(v Value) (bool, error) {
	if c.Numeric {
		if !v.Numeric {
			return false, fmt.Errorf("symbolic: numeric constraint evaluated on string value")
		}
		return c.Ivs.Contains(v.F), nil
	}
	if v.Numeric {
		return false, fmt.Errorf("symbolic: categorical constraint evaluated on numeric value")
	}
	return c.Cat.Contains(v.S), nil
}

// Value is a sample point for one term, used by Evaluate.
type Value struct {
	Numeric bool
	F       float64
	S       string
}

// Num returns a numeric sample value.
func Num(f float64) Value { return Value{Numeric: true, F: f} }

// Str returns a categorical sample value.
func Str(s string) Value { return Value{S: s} }
