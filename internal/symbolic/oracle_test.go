package symbolic

import (
	"math/rand"
	"testing"

	"eva/internal/expr"
	"eva/internal/types"
)

// Brute-force truth-table oracle for Algorithm 1. The random predicate
// family (randPredicate in dnf_test.go) only compares x and y against
// integer constants in [0,10) and c against {a,b,c}, so predicates are
// piecewise constant over the cells of the grid below: checking every
// integer and every half-integer midpoint in [-0.5, 9.5] per numeric
// axis, times every category, IS the full truth table of the family.
// INTER/DIFF/UNION produced by the symbolic machinery (DNF conversion
// + reduction) must agree with direct boolean evaluation of the raw
// expressions at every grid point.

// oracleGrid enumerates the exhaustive domain described above.
func oracleGrid() []map[string]Value {
	var axis []float64
	for v := -0.5; v <= 9.5; v += 0.5 {
		axis = append(axis, v)
	}
	cats := []string{"a", "b", "c", "d"}
	var out []map[string]Value
	for _, x := range axis {
		for _, y := range axis {
			for _, c := range cats {
				out = append(out, map[string]Value{"x": Num(x), "y": Num(y), "c": Str(c)})
			}
		}
	}
	return out
}

// evalRaw evaluates the raw (unconverted) expression at a grid point —
// the oracle side, bypassing all symbolic machinery.
func evalRaw(t *testing.T, e expr.Expr, pt map[string]Value) bool {
	t.Helper()
	res := expr.MapResolver{Cols: map[string]types.Datum{
		"x": types.NewFloat(pt["x"].F),
		"y": types.NewFloat(pt["y"].F),
		"c": types.NewString(pt["c"].S),
	}}
	v, err := expr.EvalBool(e, res)
	if err != nil {
		t.Fatalf("oracle eval %s: %v", e, err)
	}
	return v
}

// TestTruthTableOracle checks ≥1k random predicate pairs: the reduced
// INTER/DIFF/UNION must match the pointwise oracle p∧q / ¬p∧q / p∨q on
// the exhaustive grid. Seeded: every run checks the same 1000 pairs.
func TestTruthTableOracle(t *testing.T) {
	r := rand.New(rand.NewSource(2022))
	grid := oracleGrid()
	// Subsample the grid per pair to keep the test fast while covering
	// the full grid across pairs: pair i checks every 7th point with a
	// rotating offset, so all offsets — hence all points — are hit
	// every 7 pairs.
	const stride = 7
	pairs := 1000
	if testing.Short() {
		pairs = 200
	}
	for i := 0; i < pairs; i++ {
		pe := randPredicate(r, 2)
		qe := randPredicate(r, 2)
		p := mustDNF(t, pe)
		q := mustDNF(t, qe)
		inter, diff, union := Inter(p, q), Diff(p, q), Union(p, q)
		for j := i % stride; j < len(grid); j += stride {
			pt := grid[j]
			op, oq := evalRaw(t, pe, pt), evalRaw(t, qe, pt)
			if got, _ := inter.Evaluate(pt); got != (op && oq) {
				t.Fatalf("pair %d: INTER(%s, %s) = %v at %v, oracle %v",
					i, pe, qe, got, pt, op && oq)
			}
			if got, _ := diff.Evaluate(pt); got != (!op && oq) {
				t.Fatalf("pair %d: DIFF(%s, %s) = %v at %v, oracle %v",
					i, pe, qe, got, pt, !op && oq)
			}
			if got, _ := union.Evaluate(pt); got != (op || oq) {
				t.Fatalf("pair %d: UNION(%s, %s) = %v at %v, oracle %v",
					i, pe, qe, got, pt, op || oq)
			}
		}
	}
}

// TestTruthTableOracleReduce is the same oracle aimed at Reduce alone:
// reduction must never change a predicate's truth table.
func TestTruthTableOracleReduce(t *testing.T) {
	r := rand.New(rand.NewSource(2023))
	grid := oracleGrid()
	const stride = 7
	pairs := 1000
	if testing.Short() {
		pairs = 200
	}
	for i := 0; i < pairs; i++ {
		pe := randPredicate(r, 3)
		reduced := Reduce(mustDNF(t, pe))
		for j := i % stride; j < len(grid); j += stride {
			pt := grid[j]
			want := evalRaw(t, pe, pt)
			if got, _ := reduced.Evaluate(pt); got != want {
				t.Fatalf("pair %d: Reduce(%s) = %v at %v, oracle %v", i, pe, got, pt, want)
			}
		}
	}
}
