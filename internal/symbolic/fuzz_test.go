package symbolic

import (
	"math/rand"
	"testing"
)

// FuzzReduce drives Algorithm 1 with arbitrary seeded random
// predicates: reduction must terminate, preserve the predicate's
// semantics on sampled points, and be idempotent. The fuzz input is
// the generator seed plus the expression depth, so the corpus stays
// tiny while covering the whole predicate family; `make check` runs a
// short smoke, `go test -fuzz=FuzzReduce ./internal/symbolic` explores
// further.
func FuzzReduce(f *testing.F) {
	f.Add(int64(1), uint8(1))
	f.Add(int64(42), uint8(2))
	f.Add(int64(2022), uint8(3))
	f.Add(int64(-7), uint8(4))
	f.Fuzz(func(t *testing.T, seed int64, depth uint8) {
		r := rand.New(rand.NewSource(seed))
		pe := randPredicate(r, int(depth%5))
		d, err := FromExpr(pe)
		if err != nil {
			t.Fatalf("FromExpr(%s): %v", pe, err)
		}
		reduced := Reduce(d)
		twice := Reduce(reduced)
		if reduced.AtomCount() != twice.AtomCount() ||
			len(reduced.Conjuncts()) != len(twice.Conjuncts()) {
			t.Fatalf("reduce not idempotent for %s:\nonce:  %s\ntwice: %s", pe, reduced, twice)
		}
		for _, pt := range samplePoints(r, 20) {
			want, err := d.Evaluate(pt)
			if err != nil {
				t.Fatalf("evaluate %s at %v: %v", d, pt, err)
			}
			got, err := reduced.Evaluate(pt)
			if err != nil {
				t.Fatalf("evaluate reduced %s at %v: %v", reduced, pt, err)
			}
			if got != want {
				t.Fatalf("Reduce changed semantics of %s at %v: %v → %v", pe, pt, want, got)
			}
		}
	})
}
