package symbolic

import (
	"math/rand"
	"strings"
	"testing"

	"eva/internal/expr"
	"eva/internal/types"
)

// Helpers building expression predicates concisely.
func col(name string) expr.Expr                   { return expr.NewColumn(name) }
func num(v float64) expr.Expr                     { return expr.NewConst(types.NewFloat(v)) }
func str(v string) expr.Expr                      { return expr.NewConst(types.NewString(v)) }
func cmp(op expr.CmpOp, l, r expr.Expr) expr.Expr { return expr.NewCmp(op, l, r) }
func and(l, r expr.Expr) expr.Expr                { return expr.NewAnd(l, r) }
func or(l, r expr.Expr) expr.Expr                 { return expr.NewOr(l, r) }

func mustDNF(t *testing.T, e expr.Expr) DNF {
	t.Helper()
	d, err := FromExpr(e)
	if err != nil {
		t.Fatalf("FromExpr(%s): %v", e, err)
	}
	return d
}

func TestFromExprSimple(t *testing.T) {
	d := mustDNF(t, and(cmp(expr.OpGt, col("id"), num(5)), cmp(expr.OpEq, col("label"), str("car"))))
	if len(d.Conjuncts()) != 1 {
		t.Fatalf("conjuncts = %d", len(d.Conjuncts()))
	}
	c := d.Conjuncts()[0]
	if got := c.Terms(); len(got) != 2 || got[0] != "id" || got[1] != "label" {
		t.Errorf("terms = %v", got)
	}
	ok, err := d.Evaluate(map[string]Value{"id": Num(6), "label": Str("car")})
	if err != nil || !ok {
		t.Errorf("point should satisfy: %v %v", ok, err)
	}
	ok, _ = d.Evaluate(map[string]Value{"id": Num(4), "label": Str("car")})
	if ok {
		t.Error("id=4 should fail")
	}
}

func TestFromExprNilIsTrue(t *testing.T) {
	d, err := FromExpr(nil)
	if err != nil || !d.IsTrue() {
		t.Errorf("nil predicate: %v, %v", d, err)
	}
}

func TestFromExprPaperExample(t *testing.T) {
	// "timestamp > 6 OR timestamp > 9" reduces to "timestamp > 6" (§2).
	d := mustDNF(t, or(cmp(expr.OpGt, col("timestamp"), num(6)), cmp(expr.OpGt, col("timestamp"), num(9))))
	r := Reduce(d)
	if len(r.Conjuncts()) != 1 {
		t.Fatalf("reduced conjuncts = %d (%s)", len(r.Conjuncts()), r)
	}
	if got := r.AtomCount(); got != 1 {
		t.Errorf("AtomCount = %d, want 1", got)
	}
	if ok, _ := r.Evaluate(map[string]Value{"timestamp": Num(7)}); !ok {
		t.Error("7 should satisfy")
	}
	if ok, _ := r.Evaluate(map[string]Value{"timestamp": Num(6)}); ok {
		t.Error("6 should not satisfy (strict)")
	}
}

func TestFromExprMonadicReduction(t *testing.T) {
	// UNION(5 < x ∧ x < 15, 10 < x ∧ x < 20) → 5 < x ∧ x < 20 (§4.1).
	p1 := mustDNF(t, and(cmp(expr.OpLt, num(5), col("x")), cmp(expr.OpLt, col("x"), num(15))))
	p2 := mustDNF(t, and(cmp(expr.OpLt, num(10), col("x")), cmp(expr.OpLt, col("x"), num(20))))
	u := Union(p1, p2)
	if got := u.AtomCount(); got != 2 {
		t.Errorf("union atoms = %d (%s), want 2", got, u)
	}
	if ok, _ := u.Evaluate(map[string]Value{"x": Num(5.5)}); !ok {
		t.Error("5.5 in union")
	}
	if ok, _ := u.Evaluate(map[string]Value{"x": Num(20)}); ok {
		t.Error("20 not in union")
	}
}

func TestPolyadicUnionChallenge(t *testing.T) {
	// UNION(5<x ∧ 10<y, 10<x ∧ 15<y) from §4.1: the second conjunct is
	// a subset of the first in both dims, so the union is the first.
	p1 := mustDNF(t, and(cmp(expr.OpLt, num(5), col("x")), cmp(expr.OpLt, num(10), col("y"))))
	p2 := mustDNF(t, and(cmp(expr.OpLt, num(10), col("x")), cmp(expr.OpLt, num(15), col("y"))))
	u := Union(p1, p2)
	if len(u.Conjuncts()) != 1 {
		t.Fatalf("union should collapse to 1 conjunct: %s", u)
	}
	if got := u.AtomCount(); got != 2 {
		t.Errorf("atoms = %d, want 2 (5<x ∧ 10<y)", got)
	}
}

func TestReduceCaseII_ConcatenateAlongX(t *testing.T) {
	// Fig. 2(ii): same y-range, adjacent x-ranges concatenate.
	c1 := and(and(cmp(expr.OpGe, col("x"), num(0)), cmp(expr.OpLt, col("x"), num(5))),
		and(cmp(expr.OpGe, col("y"), num(0)), cmp(expr.OpLe, col("y"), num(1))))
	c2 := and(and(cmp(expr.OpGe, col("x"), num(5)), cmp(expr.OpLe, col("x"), num(9))),
		and(cmp(expr.OpGe, col("y"), num(0)), cmp(expr.OpLe, col("y"), num(1))))
	u := Union(mustDNF(t, c1), mustDNF(t, c2))
	if len(u.Conjuncts()) != 1 {
		t.Fatalf("should merge into one rectangle: %s", u)
	}
	if got := u.AtomCount(); got != 4 {
		t.Errorf("atoms = %d, want 4", got)
	}
}

func TestReduceCaseIII_CarveOverlap(t *testing.T) {
	// Fig. 2(iii): c2 ⊆ c1 in y only; overlap removed along x, then the
	// two regions are disjoint. Semantics must be preserved.
	c1 := mustDNF(t, and(and(cmp(expr.OpGe, col("x"), num(0)), cmp(expr.OpLe, col("x"), num(10))),
		and(cmp(expr.OpGe, col("y"), num(0)), cmp(expr.OpLe, col("y"), num(10)))))
	c2 := mustDNF(t, and(and(cmp(expr.OpGe, col("x"), num(5)), cmp(expr.OpLe, col("x"), num(15))),
		and(cmp(expr.OpGe, col("y"), num(2)), cmp(expr.OpLe, col("y"), num(8)))))
	u := Union(c1, c2)
	// Check point semantics across the carved boundary.
	pts := []struct {
		x, y float64
		want bool
	}{
		{1, 1, true}, {7, 5, true}, {12, 5, true}, {12, 9, false}, {16, 5, false}, {11, 1, false},
	}
	for _, p := range pts {
		got, err := u.Evaluate(map[string]Value{"x": Num(p.x), "y": Num(p.y)})
		if err != nil {
			t.Fatal(err)
		}
		if got != p.want {
			t.Errorf("(%g,%g) = %v, want %v in %s", p.x, p.y, got, p.want, u)
		}
	}
	// The carved form should stay at two disjoint conjuncts.
	if len(u.Conjuncts()) != 2 {
		t.Errorf("conjuncts = %d, want 2: %s", len(u.Conjuncts()), u)
	}
}

func TestInterDiffUnionSemantics(t *testing.T) {
	p1 := mustDNF(t, and(cmp(expr.OpLt, col("id"), num(10000)), cmp(expr.OpEq, col("label"), str("car"))))
	p2 := mustDNF(t, and(cmp(expr.OpGt, col("id"), num(7500)), cmp(expr.OpEq, col("label"), str("car"))))
	inter, diff, union := Inter(p1, p2), Diff(p1, p2), Union(p1, p2)
	pts := []map[string]Value{
		{"id": Num(5000), "label": Str("car")},
		{"id": Num(8000), "label": Str("car")},
		{"id": Num(12000), "label": Str("car")},
		{"id": Num(8000), "label": Str("bus")},
	}
	for _, pt := range pts {
		a, _ := p1.Evaluate(pt)
		b, _ := p2.Evaluate(pt)
		if got, _ := inter.Evaluate(pt); got != (a && b) {
			t.Errorf("inter at %v = %v, want %v", pt, got, a && b)
		}
		if got, _ := diff.Evaluate(pt); got != (!a && b) {
			t.Errorf("diff at %v = %v, want %v", pt, got, !a && b)
		}
		if got, _ := union.Evaluate(pt); got != (a || b) {
			t.Errorf("union at %v = %v, want %v", pt, got, a || b)
		}
	}
}

func TestNotSemantics(t *testing.T) {
	d := mustDNF(t, or(
		and(cmp(expr.OpGt, col("x"), num(5)), cmp(expr.OpEq, col("c"), str("a"))),
		cmp(expr.OpLt, col("x"), num(0)),
	))
	n := d.Not()
	pts := []map[string]Value{
		{"x": Num(6), "c": Str("a")},
		{"x": Num(6), "c": Str("b")},
		{"x": Num(-1), "c": Str("b")},
		{"x": Num(3), "c": Str("a")},
	}
	for _, pt := range pts {
		a, _ := d.Evaluate(pt)
		b, err := n.Evaluate(pt)
		if err != nil {
			t.Fatal(err)
		}
		if a == b {
			t.Errorf("¬ failed at %v: both %v", pt, a)
		}
	}
	if !True().Not().IsFalse() {
		t.Error("¬TRUE != FALSE")
	}
	if !False().Not().IsTrue() {
		t.Error("¬FALSE != TRUE")
	}
}

func TestFromExprBooleanConstsAndOpaque(t *testing.T) {
	d := mustDNF(t, expr.NewConst(types.NewBool(true)))
	if !d.IsTrue() {
		t.Error("TRUE const")
	}
	d = mustDNF(t, expr.NewNot(expr.NewConst(types.NewBool(true))))
	if !d.IsFalse() {
		t.Error("NOT TRUE")
	}
	// Opaque atoms: IS NULL and bare calls still participate logically.
	isn := expr.NewIsNull(col("labels"))
	d = mustDNF(t, and(isn, expr.NewNot(isn)))
	r := Reduce(d)
	if !r.IsFalse() {
		t.Errorf("p ∧ ¬p should reduce to FALSE: %s", r)
	}
	d = mustDNF(t, or(isn, expr.NewNot(isn)))
	if !Reduce(d).IsTrue() {
		t.Error("p ∨ ¬p should be TRUE")
	}
}

func TestFromExprTypeConflict(t *testing.T) {
	// Conjoining mismatched types is unsatisfiable (the conjunct dies);
	// disjoining them survives into separate conjuncts and is flagged.
	e := and(cmp(expr.OpGt, col("v"), num(1)), cmp(expr.OpEq, col("v"), str("car")))
	d, err := FromExpr(e)
	if err != nil || !d.IsFalse() {
		t.Errorf("AND conflict: %v, %v; want FALSE", d, err)
	}
	e = or(cmp(expr.OpGt, col("v"), num(1)), cmp(expr.OpEq, col("v"), str("car")))
	if _, err := FromExpr(e); err == nil {
		t.Error("OR numeric/categorical conflict should error")
	}
}

func TestFromExprFlippedConstantSide(t *testing.T) {
	// 10 < x is x > 10.
	d := mustDNF(t, cmp(expr.OpLt, num(10), col("x")))
	if ok, _ := d.Evaluate(map[string]Value{"x": Num(11)}); !ok {
		t.Error("11 should satisfy 10 < x")
	}
	if ok, _ := d.Evaluate(map[string]Value{"x": Num(9)}); ok {
		t.Error("9 should not satisfy 10 < x")
	}
}

func TestFromExprNeAndStrings(t *testing.T) {
	d := mustDNF(t, cmp(expr.OpNe, col("label"), str("car")))
	if ok, _ := d.Evaluate(map[string]Value{"label": Str("bus")}); !ok {
		t.Error("bus != car")
	}
	if ok, _ := d.Evaluate(map[string]Value{"label": Str("car")}); ok {
		t.Error("car != car should fail")
	}
	d = mustDNF(t, cmp(expr.OpNe, col("x"), num(5)))
	if ok, _ := d.Evaluate(map[string]Value{"x": Num(5)}); ok {
		t.Error("5 != 5")
	}
	if ok, _ := d.Evaluate(map[string]Value{"x": Num(5.1)}); !ok {
		t.Error("5.1 != 5")
	}
}

// randPredicate builds a random predicate over numeric x,y and
// categorical c with bounded depth, for the semantic fuzz test.
func randPredicate(r *rand.Rand, depth int) expr.Expr {
	if depth <= 0 || r.Intn(3) == 0 {
		switch r.Intn(3) {
		case 0:
			ops := []expr.CmpOp{expr.OpEq, expr.OpNe, expr.OpLt, expr.OpLe, expr.OpGt, expr.OpGe}
			return cmp(ops[r.Intn(len(ops))], col("x"), num(float64(r.Intn(10))))
		case 1:
			ops := []expr.CmpOp{expr.OpLt, expr.OpLe, expr.OpGt, expr.OpGe}
			return cmp(ops[r.Intn(len(ops))], col("y"), num(float64(r.Intn(10))))
		default:
			vals := []string{"a", "b", "c"}
			op := expr.OpEq
			if r.Intn(2) == 0 {
				op = expr.OpNe
			}
			return cmp(op, col("c"), str(vals[r.Intn(len(vals))]))
		}
	}
	switch r.Intn(3) {
	case 0:
		return and(randPredicate(r, depth-1), randPredicate(r, depth-1))
	case 1:
		return or(randPredicate(r, depth-1), randPredicate(r, depth-1))
	default:
		return expr.NewNot(randPredicate(r, depth-1))
	}
}

// TestSymbolicMatchesDirectEvaluation is the core soundness property:
// for random predicates p1, p2 and random sample points, the DNF
// conversion, reduction, and the derived predicates agree with direct
// boolean evaluation of the expressions.
func TestSymbolicMatchesDirectEvaluation(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	evalExpr := func(e expr.Expr, x, y float64, c string) bool {
		res := expr.MapResolver{Cols: map[string]types.Datum{
			"x": types.NewFloat(x), "y": types.NewFloat(y), "c": types.NewString(c),
		}}
		v, err := expr.EvalBool(e, res)
		if err != nil {
			t.Fatalf("eval %s: %v", e, err)
		}
		return v
	}
	for trial := 0; trial < 200; trial++ {
		e1 := randPredicate(r, 3)
		e2 := randPredicate(r, 3)
		d1, err := FromExpr(e1)
		if err != nil {
			t.Fatal(err)
		}
		d2, err := FromExpr(e2)
		if err != nil {
			t.Fatal(err)
		}
		rd1 := Reduce(d1)
		inter, diff, union := Inter(d1, d2), Diff(d1, d2), Union(d1, d2)
		for pt := 0; pt < 20; pt++ {
			x := float64(r.Intn(12)) - 0.5*float64(r.Intn(2))
			y := float64(r.Intn(12)) - 0.5*float64(r.Intn(2))
			c := []string{"a", "b", "c", "d"}[r.Intn(4)]
			point := map[string]Value{"x": Num(x), "y": Num(y), "c": Str(c)}
			w1 := evalExpr(e1, x, y, c)
			w2 := evalExpr(e2, x, y, c)
			if got, err := d1.Evaluate(point); err != nil || got != w1 {
				t.Fatalf("trial %d: DNF(%s) at (%g,%g,%s) = %v,%v want %v", trial, e1, x, y, c, got, err, w1)
			}
			if got, _ := rd1.Evaluate(point); got != w1 {
				t.Fatalf("trial %d: Reduce changed semantics of %s at (%g,%g,%s)\nDNF: %s\nreduced: %s", trial, e1, x, y, c, d1, rd1)
			}
			if got, _ := inter.Evaluate(point); got != (w1 && w2) {
				t.Fatalf("trial %d: Inter wrong at (%g,%g,%s)", trial, x, y, c)
			}
			if got, _ := diff.Evaluate(point); got != (!w1 && w2) {
				t.Fatalf("trial %d: Diff wrong at (%g,%g,%s)\ne1=%s\ne2=%s\ndiff=%s", trial, x, y, c, e1, e2, diff)
			}
			if got, _ := union.Evaluate(point); got != (w1 || w2) {
				t.Fatalf("trial %d: Union wrong at (%g,%g,%s)", trial, x, y, c)
			}
		}
		// Reduction should never increase the atom count.
		if rd1.AtomCount() > d1.AtomCount() {
			t.Fatalf("trial %d: reduction grew atoms %d -> %d\n%s\n%s", trial, d1.AtomCount(), rd1.AtomCount(), d1, rd1)
		}
	}
}

func TestDNFStringRendering(t *testing.T) {
	if False().String() != "FALSE" {
		t.Error("FALSE render")
	}
	if True().String() != "(TRUE)" {
		t.Errorf("TRUE render = %q", True().String())
	}
	d := mustDNF(t, and(cmp(expr.OpGt, col("id"), num(5)), cmp(expr.OpEq, col("label"), str("car"))))
	s := d.String()
	if !strings.Contains(s, "id") || !strings.Contains(s, "label") {
		t.Errorf("render = %q", s)
	}
}

func TestAggregatedPredicateLifecycle(t *testing.T) {
	// Mirrors the UDFManager flow: p_u starts FALSE, unions in each
	// query predicate, and Inter/Diff drive reuse decisions.
	pu := False()
	q1 := mustDNF(t, cmp(expr.OpLt, col("id"), num(10000)))
	if !Inter(pu, q1).IsFalse() {
		t.Error("first query should have no reuse")
	}
	if got := Diff(pu, q1); got.AtomCount() != 1 {
		t.Errorf("first diff should be whole predicate: %s", got)
	}
	pu = Union(pu, q1)
	q2 := mustDNF(t, and(cmp(expr.OpGt, col("id"), num(7500)), cmp(expr.OpLt, col("id"), num(12000))))
	inter := Inter(pu, q2)
	if inter.IsFalse() {
		t.Error("overlap expected")
	}
	diff := Diff(pu, q2)
	// Remaining work: (10000, 12000).
	if ok, _ := diff.Evaluate(map[string]Value{"id": Num(11000)}); !ok {
		t.Errorf("11000 should be in diff: %s", diff)
	}
	if ok, _ := diff.Evaluate(map[string]Value{"id": Num(9000)}); ok {
		t.Errorf("9000 should not be in diff: %s", diff)
	}
	pu = Union(pu, q2)
	if got := pu.AtomCount(); got != 1 {
		t.Errorf("p_u should reduce to id < 12000: %s (atoms=%d)", pu, got)
	}
}
