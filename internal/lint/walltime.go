package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// WallTime forbids reading the wall clock — and drawing from the
// global math/rand source — in the deterministic engine packages.
// Every observable there (results, reports, view logs, fault
// schedules, the virtual clock) must be a pure function of the
// (query, seed, configuration) triple, which is the property the
// differential and chaos digest matrices check dynamically; a stray
// time.Now or rand.Intn silently breaks byte-identical replay.
//
// Both calls and bare references (a time.After stored in a field)
// are flagged. Lines annotated "// lint:wallclock <why>" are exempt —
// the few sanctioned sites measure real wall time deliberately (the
// EXPLAIN ANALYZE Wall stat, the optimizer's self-timing, the serving
// layer's anti-wedge backstop) and never let it reach a deterministic
// observable.
type WallTime struct {
	scopes []string
}

// NewWallTime builds the analyzer restricted to the given import-path
// specs (see MatchPath).
func NewWallTime(scopes ...string) *WallTime { return &WallTime{scopes: scopes} }

// Name implements Analyzer.
func (a *WallTime) Name() string { return "walltime" }

// wallTimeFuncs are the package-level time functions that read or
// depend on the wall clock. Pure arithmetic on time.Duration and
// construction of explicit instants (time.Date, time.Unix) stay legal.
var wallTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true,
}

// globalRandExempt are the math/rand package-level functions that do
// not touch the global source: they build explicitly seeded
// generators, which are deterministic and therefore allowed.
var globalRandExempt = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true,
	"NewChaCha8": true,
}

// Check implements Analyzer.
func (a *WallTime) Check(u *Universe, pkg *Package) []Diagnostic {
	if !matchAny(a.scopes, pkg.Path) {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			// Only package-level functions: methods (e.g. Timer.Stop,
			// Rand.Intn on an explicit generator) are fine.
			if fn.Type().(*types.Signature).Recv() != nil {
				return true
			}
			var what string
			switch fn.Pkg().Path() {
			case "time":
				if !wallTimeFuncs[fn.Name()] {
					return true
				}
				what = "wall clock"
			case "math/rand", "math/rand/v2":
				if globalRandExempt[fn.Name()] {
					return true
				}
				what = "global math/rand source"
			default:
				return true
			}
			if u.Suppressed(pkg, sel.Pos(), "lint:wallclock") {
				return true
			}
			diags = append(diags, Diagnostic{
				Pos:      u.Fset.Position(sel.Pos()),
				Analyzer: a.Name(),
				Message: fmt.Sprintf("%s.%s reads the %s in a deterministic package; use the virtual clock or a seeded source, or annotate // lint:wallclock <why>",
					fn.Pkg().Name(), fn.Name(), what),
			})
			return true
		})
	}
	return diags
}
