package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// MapIter flags `range` over a map when the loop body has
// order-sensitive effects: Go randomizes map iteration order, so an
// append to an outer slice, a channel send, a hash/digest write, a
// view-log append or an output write performed per element produces a
// different observable on every run. That breaks the byte-identical
// digest contract of the differential/chaos matrices.
//
// Two escapes are accepted:
//
//   - the collect-then-sort idiom: a loop whose only order-sensitive
//     effect is appending to a slice that is later passed to a
//     sort/slices call in the same function body;
//   - an explicit "// lint:unordered <why>" annotation on or above
//     the range statement, for loops whose effect order genuinely
//     cannot leak (commutative merges, best-effort cleanup).
type MapIter struct {
	scopes []string
}

// NewMapIter builds the analyzer restricted to the given import-path
// specs (see MatchPath).
func NewMapIter(scopes ...string) *MapIter { return &MapIter{scopes: scopes} }

// Name implements Analyzer.
func (a *MapIter) Name() string { return "mapiter" }

// orderSinkMethods are method names whose calls accumulate their
// arguments in call order: hashing, log/batch appends and writer
// output. A call only counts when its receiver is declared outside
// the loop body (a loop-local builder cannot leak iteration order).
var orderSinkMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Append": true, "AppendWith": true, "AppendRow": true, "AppendBatch": true,
	"Encode": true, "Sum": true, "Sum64": true,
}

// orderSinkFuncs are package-level output functions that write in call
// order regardless of their destination.
var orderSinkFuncs = map[string]bool{
	"fmt.Fprint": true, "fmt.Fprintf": true, "fmt.Fprintln": true,
	"fmt.Print": true, "fmt.Printf": true, "fmt.Println": true,
}

// Check implements Analyzer.
func (a *MapIter) Check(u *Universe, pkg *Package) []Diagnostic {
	if !matchAny(a.scopes, pkg.Path) {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		var bodies []*ast.BlockStmt
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					bodies = append(bodies, fn.Body)
				}
			case *ast.FuncLit:
				bodies = append(bodies, fn.Body)
			}
			return true
		})
		for _, b := range bodies {
			inspectShallow(b, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := pkg.Info.Types[rng.X].Type
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				if u.Suppressed(pkg, rng.Pos(), "lint:unordered") {
					return true
				}
				if effect := a.orderSensitive(pkg, b, rng); effect != "" {
					diags = append(diags, Diagnostic{
						Pos:      u.Fset.Position(rng.Pos()),
						Analyzer: a.Name(),
						Message: fmt.Sprintf("map iteration order leaks through %s; sort the keys first or annotate // lint:unordered <why>",
							effect),
					})
				}
				return true
			})
		}
	}
	return diags
}

// orderSensitive scans one map-range body for order-sensitive effects
// and returns a description of the first unexcused one ("" = clean).
func (a *MapIter) orderSensitive(pkg *Package, fnBody *ast.BlockStmt, rng *ast.RangeStmt) string {
	body := rng.Body
	var effect string
	ast.Inspect(body, func(n ast.Node) bool {
		if effect != "" {
			return false
		}
		switch st := n.(type) {
		case *ast.SendStmt:
			effect = "a channel send"
		case *ast.AssignStmt:
			for i, rhs := range st.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok {
					continue
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "append" {
					continue
				}
				if b, ok := pkg.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
					continue
				}
				if i >= len(st.Lhs) {
					continue
				}
				obj := exprObject(pkg, st.Lhs[i])
				if obj == nil || declaredWithin(obj, body) {
					continue // loop-local accumulator
				}
				if sortedAfter(pkg, fnBody, rng, obj) {
					continue // collect-then-sort idiom
				}
				effect = fmt.Sprintf("append to %q", obj.Name())
			}
		case *ast.CallExpr:
			if name := sinkCall(pkg, body, st); name != "" {
				effect = fmt.Sprintf("a call to %s", name)
			}
		}
		return true
	})
	return effect
}

// sinkCall reports the display name of an order-sensitive sink call
// ("" when the call is harmless or its receiver is loop-local).
func sinkCall(pkg *Package, body *ast.BlockStmt, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok && fn.Pkg() != nil {
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
				qn := fn.Pkg().Name() + "." + fn.Name()
				if orderSinkFuncs[qn] {
					return qn
				}
				return ""
			}
		}
		if !orderSinkMethods[fun.Sel.Name] {
			return ""
		}
		recv := exprObject(pkg, baseExpr(fun.X))
		if recv == nil || declaredWithin(recv, body) {
			return ""
		}
		return recv.Name() + "." + fun.Sel.Name
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok && fn.Pkg() != nil {
			if orderSinkFuncs[fn.Pkg().Name()+"."+fn.Name()] {
				return fn.Pkg().Name() + "." + fn.Name()
			}
		}
	}
	return ""
}

// baseExpr unwraps selectors/indexes/parens to the base identifier
// expression: a.b.c[i] -> a.
func baseExpr(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return e
		}
	}
}

// exprObject resolves the variable object behind an lvalue-ish
// expression (an identifier, possibly wrapped in selectors/indexes),
// or nil when there is none.
func exprObject(pkg *Package, e ast.Expr) types.Object {
	id, ok := baseExpr(ast.Unparen(e)).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return pkg.Info.Defs[id]
}

// declaredWithin reports whether the object's declaration lies inside
// the node's source span.
func declaredWithin(obj types.Object, n ast.Node) bool {
	return obj.Pos() != token.NoPos && n.Pos() <= obj.Pos() && obj.Pos() <= n.End()
}

// sortedAfter reports whether, later in the same function body, obj is
// passed to a sort.* or slices.* call — the second half of the
// collect-then-sort idiom.
func sortedAfter(pkg *Package, fnBody *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		fn := calleeFunc(pkg, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		switch fn.Pkg().Path() {
		case "sort", "slices":
		default:
			return true
		}
		for _, arg := range call.Args {
			argFound := false
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && pkg.Info.Uses[id] == obj {
					argFound = true
				}
				return !argFound
			})
			if argFound {
				found = true
				break
			}
		}
		return true
	})
	return found
}
