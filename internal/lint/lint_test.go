package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// loadFixture loads one testdata subtree and runs the default
// analyzer suite over it.
func loadFixture(t *testing.T, rel string) (*Universe, []Diagnostic) {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	u, targets, err := Load(root, []string{rel})
	if err != nil {
		t.Fatal(err)
	}
	return u, Run(u, targets, DefaultAnalyzers(u.ModulePath))
}

var wantRe = regexp.MustCompile(`want "([^"]*)"`)

// wantComment is one expected diagnostic: the fixture file (base
// name), the line the violation sits on, and a substring of the
// message.
type wantComment struct {
	file   string
	line   int
	substr string
}

// collectWants extracts the `// ... want "substring"` expectations
// from every file of the universe's fixture packages.
func collectWants(u *Universe) []wantComment {
	var wants []wantComment
	for _, p := range u.Packages {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := u.Fset.Position(c.Pos())
					wants = append(wants, wantComment{
						file:   filepath.Base(pos.Filename),
						line:   pos.Line,
						substr: m[1],
					})
				}
			}
		}
	}
	return wants
}

// TestFixtures checks each analyzer against its positive (bad) and
// negative (ok) fixture twins: every `want` comment must be matched
// by exactly one diagnostic at its file and line, and no diagnostic
// may appear without a `want`.
func TestFixtures(t *testing.T) {
	for _, tree := range []string{"exhaustive", "guardedby", "nopanic", "errdiscipline", "trackedgoroutine", "walltime", "mapiter", "hotalloc", "faultsite"} {
		t.Run(tree, func(t *testing.T) {
			u, diags := loadFixture(t, "internal/lint/testdata/src/"+tree+"/...")
			wants := collectWants(u)
			if len(wants) == 0 {
				t.Fatalf("fixture tree %s has no want comments", tree)
			}
			matched := make([]bool, len(wants))
			for _, d := range diags {
				found := false
				for i, w := range wants {
					if matched[i] || filepath.Base(d.Pos.Filename) != w.file || d.Pos.Line != w.line {
						continue
					}
					if !strings.Contains(d.Message, w.substr) {
						t.Errorf("%s: diagnostic at the want line but message %q does not contain %q", d, d.Message, w.substr)
					}
					matched[i] = true
					found = true
					break
				}
				if !found {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for i, w := range wants {
				if !matched[i] {
					t.Errorf("missing diagnostic at %s:%d containing %q", w.file, w.line, w.substr)
				}
			}
		})
	}
}

// TestOkFixturesClean re-checks that the negative twins alone produce
// zero diagnostics — the suppression hatches, *Locked convention, and
// wrapped-error patterns must all be accepted.
func TestOkFixturesClean(t *testing.T) {
	for _, tree := range []string{"exhaustive", "guardedby", "nopanic", "errdiscipline", "trackedgoroutine", "walltime", "mapiter", "hotalloc", "faultsite"} {
		t.Run(tree, func(t *testing.T) {
			_, diags := loadFixture(t, "internal/lint/testdata/src/"+tree+"/ok")
			for _, d := range diags {
				t.Errorf("ok fixture produced a diagnostic: %s", d)
			}
		})
	}
}

// TestDiagnosticPositions pins the exact file:line:column of one
// representative diagnostic per analyzer, so position reporting can
// never silently drift.
func TestDiagnosticPositions(t *testing.T) {
	cases := []struct {
		tree     string
		analyzer string
		suffix   string // file:line:col relative to the fixture dir
	}{
		{"exhaustive", "exhaustive-switch", "exhaustive/bad/bad.go:34:2"},
		{"guardedby", "guarded-by", "guardedby/bad/bad.go:17:2"},
		{"nopanic", "no-panic", "nopanic/bad/bad.go:7:3"},
		{"errdiscipline", "error-discipline", "errdiscipline/bad/bad.go:9:5"},
		{"trackedgoroutine", "tracked-goroutine", "trackedgoroutine/bad/bad.go:7:2"},
		{"walltime", "walltime", "walltime/bad/bad.go:12:11"},
		{"mapiter", "mapiter", "mapiter/bad/bad.go:14:2"},
		{"hotalloc", "hotalloc", "hotalloc/bad/bad.go:19:13"},
		{"faultsite", "faultsite", "faultsite/bad/bad.go:10:11"},
	}
	for _, tc := range cases {
		t.Run(tc.analyzer, func(t *testing.T) {
			_, diags := loadFixture(t, "internal/lint/testdata/src/"+tc.tree+"/bad")
			for _, d := range diags {
				got := fmt.Sprintf("%s:%d:%d", filepath.ToSlash(d.Pos.Filename), d.Pos.Line, d.Pos.Column)
				if d.Analyzer == tc.analyzer && strings.HasSuffix(got, tc.suffix) {
					return
				}
			}
			var all []string
			for _, d := range diags {
				all = append(all, d.String())
			}
			t.Errorf("no %s diagnostic at %s; got:\n%s", tc.analyzer, tc.suffix, strings.Join(all, "\n"))
		})
	}
}

// TestTreeClean is the gate the Makefile's check target relies on:
// the production tree must lint clean under the default suite.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole module")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	u, targets, err := Load(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(u, targets, DefaultAnalyzers(u.ModulePath))
	for _, d := range diags {
		t.Errorf("tree not lint-clean: %s", d)
	}
}

// TestMatchPath covers the path-spec matcher used to scope analyzers.
func TestMatchPath(t *testing.T) {
	cases := []struct {
		spec, path string
		want       bool
	}{
		{"eva/internal/exec", "eva/internal/exec", true},
		{"eva/internal/exec", "eva/internal/exec/sub", false},
		{"eva/internal/exec/...", "eva/internal/exec", true},
		{"eva/internal/exec/...", "eva/internal/exec/sub", true},
		{"eva/internal/exec/...", "eva/internal/execute", false},
	}
	for _, tc := range cases {
		if got := MatchPath(tc.spec, tc.path); got != tc.want {
			t.Errorf("MatchPath(%q, %q) = %v, want %v", tc.spec, tc.path, got, tc.want)
		}
	}
}
