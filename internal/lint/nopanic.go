package lint

import (
	"go/ast"
	"go/types"
)

// NoPanic forbids calls to the builtin panic in the query-path
// packages: a malformed predicate or an unexpected operator must
// surface as a returned error, never crash a serving process. Lines
// annotated "// lint:invariant <why>" are exempt (true invariant
// violations that indicate programmer error, not data).
type NoPanic struct {
	scopes []string
}

// NewNoPanic builds the analyzer restricted to the given import-path
// specs (see MatchPath).
func NewNoPanic(scopes ...string) *NoPanic { return &NoPanic{scopes: scopes} }

// Name implements Analyzer.
func (a *NoPanic) Name() string { return "no-panic" }

// Check implements Analyzer.
func (a *NoPanic) Check(u *Universe, pkg *Package) []Diagnostic {
	if !matchAny(a.scopes, pkg.Path) {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if b, ok := pkg.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "panic" {
				return true
			}
			if u.Suppressed(pkg, call.Pos(), "lint:invariant") {
				return true
			}
			diags = append(diags, Diagnostic{
				Pos:      u.Fset.Position(call.Pos()),
				Analyzer: a.Name(),
				Message:  "panic in the query path; return an error or annotate // lint:invariant <why>",
			})
			return true
		})
	}
	return diags
}
