package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc is the allocation gate on the execution hot path. Functions
// whose declaration carries a "// lint:hotpath <why>" annotation
// promise not to heap-allocate per row; the analyzer enforces that
// inside their row loops — the innermost for/range statements — by
// forbidding:
//
//   - composite literals (each iteration constructs a fresh value
//     that usually escapes);
//   - make and append (per-row slice/map growth; size buffers per
//     batch, outside the row loop);
//   - fmt.Sprint* / fmt.Errorf / fmt.Append* and string
//     concatenation (per-row formatting allocates strings);
//   - interface boxing: passing or assigning a concrete non-pointer
//     value where an interface is expected stores it in a fresh heap
//     cell.
//
// Two pooled idioms are recognized as allocation-free and exempt:
//
//   - slot reset: `slots[i] = T{}` writes a composite literal into an
//     existing slice or array element — reusing preallocated storage,
//     not constructing a heap value (a map slot is NOT exempt; a map
//     write can grow buckets);
//   - terminal block: a block whose control flow unconditionally ends
//     in a return (no break/continue/goto escaping it first) executes
//     at most once per call, so its allocations — typically building
//     an error before bailing out — are cold by construction.
//
// Allocations inside a return statement are exempt for the same
// reason — a return terminates the loop, so the allocation happens at
// most once per call (the error path). "// lint:coldalloc <why>" on
// or above a statement exempts a deliberate cold allocation inside
// the loop.
//
// The gate exists so the pooled-batch refactor (zero-allocation
// scan→filter→apply) cannot silently regress: once a function is
// marked and clean, a future per-row allocation fails the build.
type HotAlloc struct{}

// NewHotAlloc builds the analyzer. It is annotation-driven and needs
// no path scoping: only functions marked lint:hotpath are checked.
func NewHotAlloc() *HotAlloc { return &HotAlloc{} }

// Name implements Analyzer.
func (a *HotAlloc) Name() string { return "hotalloc" }

// hotFmtFuncs are the fmt functions that allocate their result.
var hotFmtFuncs = map[string]bool{
	"Sprint": true, "Sprintf": true, "Sprintln": true, "Errorf": true,
	"Appendf": true, "Append": true, "Appendln": true,
}

// Check implements Analyzer.
func (a *HotAlloc) Check(u *Universe, pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			if !u.Suppressed(pkg, fn.Pos(), "lint:hotpath") {
				return true
			}
			for _, loop := range innermostLoops(fn.Body) {
				diags = append(diags, a.checkLoop(u, pkg, loop)...)
			}
			return true
		})
	}
	return diags
}

// loopBody returns the body of a for or range statement.
func loopBody(n ast.Node) *ast.BlockStmt {
	switch l := n.(type) {
	case *ast.ForStmt:
		return l.Body
	case *ast.RangeStmt:
		return l.Body
	}
	return nil
}

// innermostLoops collects the function's row loops: for/range
// statements containing no nested loop (function literals are opaque —
// they run on their own schedule, not per row of this loop).
func innermostLoops(body *ast.BlockStmt) []ast.Node {
	var loops []ast.Node
	inspectShallow(body, func(n ast.Node) bool {
		b := loopBody(n)
		if b == nil {
			return true
		}
		nested := false
		inspectShallow(b, func(m ast.Node) bool {
			if m != n && loopBody(m) != nil {
				nested = true
			}
			return !nested
		})
		if !nested {
			loops = append(loops, n)
		}
		return true
	})
	return loops
}

// checkLoop enforces the per-row allocation rules inside one row loop.
func (a *HotAlloc) checkLoop(u *Universe, pkg *Package, loop ast.Node) []Diagnostic {
	body := loopBody(loop)

	// Cold spans: allocations inside them run at most once per call, so
	// they are exempt by construction. A return statement's span
	// qualifies (the loop exits), and so does a terminal block — one
	// that unconditionally ends in a return with no branch statement
	// that could leave it early (the error-path idiom: fill in an error
	// field, then bail out).
	var coldSpans []ast.Node
	inspectShallow(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.ReturnStmt); ok {
			coldSpans = append(coldSpans, n)
			return false
		}
		if blk, ok := n.(*ast.BlockStmt); ok && terminalBlock(blk) {
			coldSpans = append(coldSpans, blk)
			return false
		}
		return true
	})
	cold := func(n ast.Node) bool {
		for _, r := range coldSpans {
			if r.Pos() <= n.Pos() && n.End() <= r.End() {
				return true
			}
		}
		return false
	}

	// Slot resets: composite literals written into an existing slice or
	// array element reuse preallocated storage (only the outer literal
	// is exempt; its elements are still checked).
	slotReset := map[ast.Node]bool{}
	inspectShallow(body, func(n ast.Node) bool {
		st, ok := n.(*ast.AssignStmt)
		if !ok || st.Tok != token.ASSIGN || len(st.Lhs) != 1 || len(st.Rhs) != 1 {
			return true
		}
		idx, ok := ast.Unparen(st.Lhs[0]).(*ast.IndexExpr)
		if !ok {
			return true
		}
		lit, ok := ast.Unparen(st.Rhs[0]).(*ast.CompositeLit)
		if !ok {
			return true
		}
		if t := pkg.Info.Types[idx.X].Type; t != nil {
			switch t.Underlying().(type) {
			case *types.Slice, *types.Array:
				slotReset[lit] = true
			}
		}
		return true
	})

	var diags []Diagnostic
	flag := func(n ast.Node, msg string) {
		if cold(n) || u.Suppressed(pkg, n.Pos(), "lint:coldalloc") {
			return
		}
		diags = append(diags, Diagnostic{
			Pos:      u.Fset.Position(n.Pos()),
			Analyzer: a.Name(),
			Message:  msg + " in a lint:hotpath row loop; hoist it out of the loop, use a pooled buffer, or annotate // lint:coldalloc <why>",
		})
	}

	inspectShallow(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CompositeLit:
			if slotReset[e] {
				return true // exempt slot reset; still check its elements
			}
			flag(e, "composite literal allocates per row")
			return false
		case *ast.BinaryExpr:
			if e.Op.String() == "+" {
				if t := pkg.Info.Types[e].Type; t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						flag(e, "string concatenation allocates per row")
					}
				}
			}
		case *ast.CallExpr:
			diags = append(diags, a.checkCall(u, pkg, e, flag)...)
		}
		return true
	})

	// Interface boxing through assignment: storing a concrete
	// non-pointer value into an interface-typed location.
	inspectShallow(body, func(n ast.Node) bool {
		st, ok := n.(*ast.AssignStmt)
		if !ok || len(st.Lhs) != len(st.Rhs) {
			return true
		}
		for i, lhs := range st.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
				continue
			}
			lt := pkg.Info.Types[lhs].Type
			rt := pkg.Info.Types[st.Rhs[i]].Type
			if boxes(lt, rt) {
				flag(st.Rhs[i], fmt.Sprintf("assignment boxes %s into an interface", rt))
			}
		}
		return true
	})
	return diags
}

// terminalBlock reports whether blk unconditionally ends in a return
// and contains no branch statement (break, continue, goto,
// fallthrough) that could leave it before reaching that return — so
// once entered, the block always exits the function, and therefore
// executes at most once per call.
func terminalBlock(blk *ast.BlockStmt) bool {
	if len(blk.List) == 0 {
		return false
	}
	if _, ok := blk.List[len(blk.List)-1].(*ast.ReturnStmt); !ok {
		return false
	}
	escapes := false
	ast.Inspect(blk, func(n ast.Node) bool {
		if _, ok := n.(*ast.BranchStmt); ok {
			escapes = true
		}
		return !escapes
	})
	return !escapes
}

// checkCall enforces the call-shaped rules: make/append, per-row fmt
// formatting, and interface boxing of arguments.
func (a *HotAlloc) checkCall(u *Universe, pkg *Package, call *ast.CallExpr, flag func(ast.Node, string)) []Diagnostic {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				flag(call, "make allocates per row")
			case "append":
				flag(call, "append grows a buffer per row")
			}
			return nil
		}
	}
	tv, ok := pkg.Info.Types[call.Fun]
	if ok && tv.IsType() {
		return nil // conversion, not a call
	}
	if fn := calleeFunc(pkg, call); fn != nil && fn.Pkg() != nil &&
		fn.Pkg().Path() == "fmt" && hotFmtFuncs[fn.Name()] {
		flag(call, "fmt."+fn.Name()+" formats per row")
		return nil
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return nil
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if boxes(pt, pkg.Info.Types[arg].Type) {
			flag(arg, fmt.Sprintf("argument boxes %s into an interface", pkg.Info.Types[arg].Type))
		}
	}
	return nil
}

// boxes reports whether storing a value of type from into a location
// of type to converts a concrete non-pointer value to an interface —
// the conversion that heap-allocates the value's copy. Pointers (and
// existing interfaces) fit in the interface word without allocating.
func boxes(to, from types.Type) bool {
	if to == nil || from == nil {
		return false
	}
	if !types.IsInterface(types.Unalias(to)) || types.IsInterface(types.Unalias(from)) {
		return false
	}
	switch types.Unalias(from).Underlying().(type) {
	case *types.Pointer, *types.Signature, *types.Map, *types.Chan:
		return false // single-word values: stored directly
	case *types.Basic:
		if b := types.Unalias(from).Underlying().(*types.Basic); b.Kind() == types.UntypedNil {
			return false
		}
	}
	return true
}
