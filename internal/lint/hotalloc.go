package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// HotAlloc is the allocation gate on the execution hot path. Functions
// whose declaration carries a "// lint:hotpath <why>" annotation
// promise not to heap-allocate per row; the analyzer enforces that
// inside their row loops — the innermost for/range statements — by
// forbidding:
//
//   - composite literals (each iteration constructs a fresh value
//     that usually escapes);
//   - make and append (per-row slice/map growth; size buffers per
//     batch, outside the row loop);
//   - fmt.Sprint* / fmt.Errorf / fmt.Append* and string
//     concatenation (per-row formatting allocates strings);
//   - interface boxing: passing or assigning a concrete non-pointer
//     value where an interface is expected stores it in a fresh heap
//     cell.
//
// Allocations inside a return statement are exempt — a return
// terminates the loop, so the allocation happens at most once per
// call (the error path). "// lint:coldalloc <why>" on or above a
// statement exempts a deliberate cold allocation inside the loop.
//
// The gate exists so the pooled-batch refactor (zero-allocation
// scan→filter→apply) cannot silently regress: once a function is
// marked and clean, a future per-row allocation fails the build.
type HotAlloc struct{}

// NewHotAlloc builds the analyzer. It is annotation-driven and needs
// no path scoping: only functions marked lint:hotpath are checked.
func NewHotAlloc() *HotAlloc { return &HotAlloc{} }

// Name implements Analyzer.
func (a *HotAlloc) Name() string { return "hotalloc" }

// hotFmtFuncs are the fmt functions that allocate their result.
var hotFmtFuncs = map[string]bool{
	"Sprint": true, "Sprintf": true, "Sprintln": true, "Errorf": true,
	"Appendf": true, "Append": true, "Appendln": true,
}

// Check implements Analyzer.
func (a *HotAlloc) Check(u *Universe, pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			if !u.Suppressed(pkg, fn.Pos(), "lint:hotpath") {
				return true
			}
			for _, loop := range innermostLoops(fn.Body) {
				diags = append(diags, a.checkLoop(u, pkg, loop)...)
			}
			return true
		})
	}
	return diags
}

// loopBody returns the body of a for or range statement.
func loopBody(n ast.Node) *ast.BlockStmt {
	switch l := n.(type) {
	case *ast.ForStmt:
		return l.Body
	case *ast.RangeStmt:
		return l.Body
	}
	return nil
}

// innermostLoops collects the function's row loops: for/range
// statements containing no nested loop (function literals are opaque —
// they run on their own schedule, not per row of this loop).
func innermostLoops(body *ast.BlockStmt) []ast.Node {
	var loops []ast.Node
	inspectShallow(body, func(n ast.Node) bool {
		b := loopBody(n)
		if b == nil {
			return true
		}
		nested := false
		inspectShallow(b, func(m ast.Node) bool {
			if m != n && loopBody(m) != nil {
				nested = true
			}
			return !nested
		})
		if !nested {
			loops = append(loops, n)
		}
		return true
	})
	return loops
}

// checkLoop enforces the per-row allocation rules inside one row loop.
func (a *HotAlloc) checkLoop(u *Universe, pkg *Package, loop ast.Node) []Diagnostic {
	body := loopBody(loop)

	// Spans of return statements: allocations inside them run at most
	// once per call (the loop exits), so they are cold by construction.
	var returns []ast.Node
	inspectShallow(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.ReturnStmt); ok {
			returns = append(returns, n)
			return false
		}
		return true
	})
	cold := func(n ast.Node) bool {
		for _, r := range returns {
			if r.Pos() <= n.Pos() && n.End() <= r.End() {
				return true
			}
		}
		return false
	}

	var diags []Diagnostic
	flag := func(n ast.Node, msg string) {
		if cold(n) || u.Suppressed(pkg, n.Pos(), "lint:coldalloc") {
			return
		}
		diags = append(diags, Diagnostic{
			Pos:      u.Fset.Position(n.Pos()),
			Analyzer: a.Name(),
			Message:  msg + " in a lint:hotpath row loop; hoist it out of the loop, use a pooled buffer, or annotate // lint:coldalloc <why>",
		})
	}

	inspectShallow(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CompositeLit:
			flag(e, "composite literal allocates per row")
			return false
		case *ast.BinaryExpr:
			if e.Op.String() == "+" {
				if t := pkg.Info.Types[e].Type; t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						flag(e, "string concatenation allocates per row")
					}
				}
			}
		case *ast.CallExpr:
			diags = append(diags, a.checkCall(u, pkg, e, flag)...)
		}
		return true
	})

	// Interface boxing through assignment: storing a concrete
	// non-pointer value into an interface-typed location.
	inspectShallow(body, func(n ast.Node) bool {
		st, ok := n.(*ast.AssignStmt)
		if !ok || len(st.Lhs) != len(st.Rhs) {
			return true
		}
		for i, lhs := range st.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
				continue
			}
			lt := pkg.Info.Types[lhs].Type
			rt := pkg.Info.Types[st.Rhs[i]].Type
			if boxes(lt, rt) {
				flag(st.Rhs[i], fmt.Sprintf("assignment boxes %s into an interface", rt))
			}
		}
		return true
	})
	return diags
}

// checkCall enforces the call-shaped rules: make/append, per-row fmt
// formatting, and interface boxing of arguments.
func (a *HotAlloc) checkCall(u *Universe, pkg *Package, call *ast.CallExpr, flag func(ast.Node, string)) []Diagnostic {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				flag(call, "make allocates per row")
			case "append":
				flag(call, "append grows a buffer per row")
			}
			return nil
		}
	}
	tv, ok := pkg.Info.Types[call.Fun]
	if ok && tv.IsType() {
		return nil // conversion, not a call
	}
	if fn := calleeFunc(pkg, call); fn != nil && fn.Pkg() != nil &&
		fn.Pkg().Path() == "fmt" && hotFmtFuncs[fn.Name()] {
		flag(call, "fmt."+fn.Name()+" formats per row")
		return nil
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return nil
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if boxes(pt, pkg.Info.Types[arg].Type) {
			flag(arg, fmt.Sprintf("argument boxes %s into an interface", pkg.Info.Types[arg].Type))
		}
	}
	return nil
}

// boxes reports whether storing a value of type from into a location
// of type to converts a concrete non-pointer value to an interface —
// the conversion that heap-allocates the value's copy. Pointers (and
// existing interfaces) fit in the interface word without allocating.
func boxes(to, from types.Type) bool {
	if to == nil || from == nil {
		return false
	}
	if !types.IsInterface(types.Unalias(to)) || types.IsInterface(types.Unalias(from)) {
		return false
	}
	switch types.Unalias(from).Underlying().(type) {
	case *types.Pointer, *types.Signature, *types.Map, *types.Chan:
		return false // single-word values: stored directly
	case *types.Basic:
		if b := types.Unalias(from).Underlying().(*types.Basic); b.Kind() == types.UntypedNil {
			return false
		}
	}
	return true
}
