package lint

import "go/ast"

// TrackedGoroutine forbids bare `go` statements in the serving-layer
// packages: every spawn must go through the tracked pool
// (server.Group.Go), so shutdown can prove no goroutine outlives the
// system. The sanctioned spawn point itself carries a
// "// lint:trackedgo <why>" annotation, which exempts the line.
type TrackedGoroutine struct {
	scopes []string
}

// NewTrackedGoroutine builds the analyzer restricted to the given
// import-path specs (see MatchPath).
func NewTrackedGoroutine(scopes ...string) *TrackedGoroutine {
	return &TrackedGoroutine{scopes: scopes}
}

// Name implements Analyzer.
func (a *TrackedGoroutine) Name() string { return "tracked-goroutine" }

// Check implements Analyzer.
func (a *TrackedGoroutine) Check(u *Universe, pkg *Package) []Diagnostic {
	if !matchAny(a.scopes, pkg.Path) {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if u.Suppressed(pkg, stmt.Pos(), "lint:trackedgo") {
				return true
			}
			diags = append(diags, Diagnostic{
				Pos:      u.Fset.Position(stmt.Pos()),
				Analyzer: a.Name(),
				Message:  "bare go statement in the serving layer; spawn through the tracked pool or annotate // lint:trackedgo <why>",
			})
			return true
		})
	}
	return diags
}
