package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// FindModuleRoot walks upward from dir until it finds a go.mod.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		abs = parent
	}
}

// Load parses and type-checks the packages selected by patterns,
// resolved relative to the module root. Supported patterns:
//
//	./...        every module package (testdata trees excluded)
//	dir/...      the subtree rooted at dir
//	dir          the single package in dir
//
// It returns the Universe of all loaded module packages (targets plus
// their module dependencies) and the target packages themselves.
// Fixture packages under testdata are only loaded when a pattern
// names them explicitly.
func Load(root string, patterns []string) (*Universe, []*Package, error) {
	modPath, err := modulePath(root)
	if err != nil {
		return nil, nil, err
	}
	l := &loader{
		fset:    token.NewFileSet(),
		root:    root,
		modPath: modPath,
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}
	l.std = importer.ForCompiler(l.fset, "source", nil)

	var dirs []string
	seen := map[string]bool{}
	addDir := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			ds, err := packageDirs(root, root, false)
			if err != nil {
				return nil, nil, err
			}
			for _, d := range ds {
				addDir(d)
			}
		case strings.HasSuffix(pat, "/..."):
			base := filepath.Join(root, filepath.FromSlash(strings.TrimSuffix(pat, "/...")))
			inTestdata := strings.Contains(base, string(filepath.Separator)+"testdata")
			ds, err := packageDirs(root, base, inTestdata)
			if err != nil {
				return nil, nil, err
			}
			for _, d := range ds {
				addDir(d)
			}
		default:
			addDir(filepath.Join(root, filepath.FromSlash(pat)))
		}
	}

	var targets []*Package
	for _, d := range dirs {
		path, err := l.pathFor(d)
		if err != nil {
			return nil, nil, err
		}
		pkg, err := l.load(path)
		if err != nil {
			return nil, nil, err
		}
		targets = append(targets, pkg)
	}

	u := &Universe{Fset: l.fset, ModulePath: modPath}
	for _, p := range l.pkgs {
		u.Packages = append(u.Packages, p)
	}
	sort.Slice(u.Packages, func(i, j int) bool { return u.Packages[i].Path < u.Packages[j].Path })
	return u, targets, nil
}

// modulePath reads the module directive from root's go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("lint: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s/go.mod", root)
}

// packageDirs lists the directories under base that contain at least
// one non-test Go file. Unless includeTestdata is set, testdata trees
// (along with hidden and vendor directories) are skipped — mirroring
// how the go tool resolves "./...".
func packageDirs(root, base string, includeTestdata bool) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != base {
			if strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "vendor" {
				return filepath.SkipDir
			}
			if name == "testdata" && !includeTestdata {
				return filepath.SkipDir
			}
		}
		entries, err := os.ReadDir(p)
		if err != nil {
			return err
		}
		for _, e := range entries {
			n := e.Name()
			if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
				dirs = append(dirs, p)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// buildTagSatisfied reports whether the file's //go:build constraint
// (if any) holds under the default build configuration — the one the
// repo's tier-1 `go build ./...` sees: host GOOS/GOARCH, gc, and no
// extra tags. Files gated on custom tags (evadebug) or toolchain modes
// (race) are the alternate halves of paired variants; loading both
// halves would redeclare their shared symbols.
func buildTagSatisfied(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				return true
			}
			return expr.Eval(func(tag string) bool {
				return tag == runtime.GOOS || tag == runtime.GOARCH || tag == "gc" ||
					strings.HasPrefix(tag, "go1.")
			})
		}
	}
	return true
}

type loader struct {
	fset    *token.FileSet
	root    string
	modPath string
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

func (l *loader) pathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.root, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module root %s", dir, l.root)
	}
	if rel == "." {
		return l.modPath, nil
	}
	return l.modPath + "/" + filepath.ToSlash(rel), nil
}

func (l *loader) dirFor(path string) string {
	if path == l.modPath {
		return l.root
	}
	return filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(path, l.modPath+"/")))
}

// load parses and type-checks one module package (memoized), loading
// its module dependencies recursively via the importer.
func (l *loader) load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.dirFor(path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		if !buildTagSatisfied(f) {
			continue
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: importerFunc(l.importPkg)}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// importPkg resolves module-internal imports through the loader and
// everything else (the standard library) through the source importer.
func (l *loader) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
