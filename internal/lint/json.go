package lint

import (
	"encoding/json"
	"io"
)

// jsonDiagnostic is the stable machine-readable shape of one finding,
// emitted by evalint -json for editor and CI integrations.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// WriteJSON encodes the diagnostics as an indented JSON array of
// {file, line, col, analyzer, message} objects. An empty diagnostic
// list encodes as [], never null, so consumers can range over the
// result unconditionally.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiagnostic{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
