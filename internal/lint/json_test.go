package lint

import (
	"bytes"
	"go/token"
	"strings"
	"testing"
)

// TestWriteJSON pins the machine-readable format evalint -json emits;
// editor and CI integrations parse it, so it must not drift.
func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	diags := []Diagnostic{{
		Pos:      token.Position{Filename: "internal/exec/exec.go", Line: 7, Column: 3},
		Analyzer: "hotalloc",
		Message:  "composite literal allocates per row",
	}}
	if err := WriteJSON(&buf, diags); err != nil {
		t.Fatal(err)
	}
	want := `[
  {
    "file": "internal/exec/exec.go",
    "line": 7,
    "col": 3,
    "analyzer": "hotalloc",
    "message": "composite literal allocates per row"
  }
]
`
	if buf.String() != want {
		t.Errorf("WriteJSON = %q, want %q", buf.String(), want)
	}
}

// TestWriteJSONEmpty checks a clean run encodes as [], never null.
func TestWriteJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Errorf("empty diagnostics encode as %q, want []", got)
	}
}
