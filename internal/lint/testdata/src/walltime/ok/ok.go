// Package ok demonstrates the patterns the walltime analyzer accepts:
// virtual-clock duration arithmetic, explicitly seeded generators,
// methods on explicit timers, and the annotated sanctioned site.
package ok

import (
	"math/rand"
	"time"
)

// Tick advances a virtual clock by a modeled cost — pure Duration
// arithmetic never touches the wall clock.
func Tick(now time.Duration) time.Duration { return now + 5*time.Millisecond }

// Draw uses an explicitly seeded generator, which replays identically
// on every run.
func Draw(seed int64) int {
	return rand.New(rand.NewSource(seed)).Intn(10)
}

// Wall is the sanctioned diagnostic measurement: real elapsed time
// that never reaches a deterministic observable.
func Wall(f func()) time.Duration {
	// lint:wallclock diagnostic-only measurement
	start := time.Now()
	f()
	return time.Since(start) // lint:wallclock diagnostic-only measurement
}
