// Package bad seeds wall-clock and global-rand violations for the
// walltime analyzer tests.
package bad

import (
	"math/rand"
	"time"
)

// Elapsed reads the wall clock directly, so results differ per run.
func Elapsed(f func()) time.Duration {
	start := time.Now() // want "time.Now reads the wall clock"
	f()
	return time.Since(start) // want "time.Since reads the wall clock"
}

// Jitter draws from the global math/rand source.
func Jitter() time.Duration {
	return time.Duration(rand.Intn(10)) * time.Millisecond // want "rand.Intn reads the global math/rand source"
}

// Backstop stores a timer source in a field.
type Backstop struct {
	after func(time.Duration) <-chan time.Time
}

// NewBackstop wires the real timer without sanction: bare references
// are flagged like calls.
func NewBackstop() *Backstop {
	return &Backstop{after: time.After} // want "time.After reads the wall clock"
}

// Nap sleeps real time inside engine code.
func Nap() {
	time.Sleep(time.Millisecond) // want "time.Sleep reads the wall clock"
}
