// Package bad seeds exhaustive-switch violations for the analyzer
// tests. Every line carrying a `want` comment must produce exactly
// that diagnostic.
package bad

// Op is a sealed operator enum.
//
// lint:exhaustive
type Op int

// The Op variants.
const (
	OpAdd Op = iota
	OpSub
	OpMul
)

// Node is a sealed plan-node interface.
//
// lint:exhaustive
type Node interface{ node() }

// Scan is one Node variant.
type Scan struct{}

// Filter is the other Node variant.
type Filter struct{}

func (*Scan) node()   {}
func (*Filter) node() {}

// Describe is missing OpMul.
func Describe(op Op) string {
	switch op { // want "switch over Op is not exhaustive: missing OpMul"
	case OpAdd:
		return "add"
	case OpSub:
		return "sub"
	}
	return ""
}

// DescribeDefault has a default clause but no annotation; still flagged.
func DescribeDefault(op Op) string {
	switch op { // want "switch over Op is not exhaustive: missing OpSub"
	default:
		return "?"
	case OpAdd, OpMul:
		return "known"
	}
}

// Walk is missing *Filter.
func Walk(n Node) int {
	switch n.(type) { // want "type switch over Node is not exhaustive: missing *Filter"
	case *Scan:
		return 1
	}
	return 0
}
