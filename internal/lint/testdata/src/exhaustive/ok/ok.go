// Package ok demonstrates the clean patterns the exhaustive-switch
// analyzer accepts: full coverage, an annotated partial switch, nil
// cases, and unexported sentinel constants on exported enums.
package ok

// Op is a sealed operator enum.
//
// lint:exhaustive
type Op int

// The Op variants. numOps is a length sentinel, not a variant: the
// type is exported, so only exported constants count.
const (
	OpAdd Op = iota
	OpSub
	numOps
)

// Node is a sealed plan-node interface.
//
// lint:exhaustive
type Node interface{ node() }

// Scan is the only Node variant.
type Scan struct{}

func (*Scan) node() {}

// Describe covers every variant; the sentinel is not required.
func Describe(op Op) string {
	switch op {
	case OpAdd:
		return "add"
	case OpSub:
		return "sub"
	}
	return ""
}

// Partial justifies its default clause.
func Partial(op Op) string {
	switch op {
	case OpAdd:
		return "add"
	default: // lint:nonexhaustive only OpAdd needs a symbol here
		return "?"
	}
}

// Walk covers every variant; a nil case is never required.
func Walk(n Node) int {
	switch n.(type) {
	case *Scan:
		return 1
	case nil:
		return -1
	}
	return 0
}

// Covered keeps an unannotated default as a safety net; allowed
// because every variant is already covered.
func Covered(op Op) string {
	switch op {
	case OpAdd, OpSub:
		return "known"
	default:
		return "sentinel"
	}
}

// Sizes shows the sentinel's purpose: capacity math over the enum.
func Sizes() [numOps]string {
	return [numOps]string{"add", "sub"}
}
