// Package bad seeds error-discipline violations for the analyzer
// tests.
package bad

import "strconv"

// Discard hides the conversion failure in a blank identifier.
func Discard(s string) int {
	n, _ := strconv.Atoi(s) // want "error discarded with blank identifier"
	return n
}

// Naked re-returns a foreign error with no wrapping, so the caller
// cannot tell which layer failed.
func Naked(s string) error {
	n, err := strconv.Atoi(s)
	if err != nil {
		return err // want "error from strconv.Atoi returned without wrapping"
	}
	_ = n
	return nil
}
