// Package ok demonstrates the error-handling patterns the
// error-discipline analyzer accepts: wrapped foreign errors, bare
// propagation of same-package errors, and lint:noerrcheck.
package ok

import (
	"errors"
	"fmt"
	"os"
	"strconv"
)

// Wrapped adds this layer's context before propagating.
func Wrapped(s string) (int, error) {
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("ok: parse %q: %w", s, err)
	}
	return n, nil
}

func local() error { return errors.New("ok: local failure") }

// Propagate returns a same-package error bare: the frame that
// produced it already attached context.
func Propagate() error {
	err := local()
	if err != nil {
		return err
	}
	return nil
}

// Tolerated suppresses the naked-return rule with a justification.
func Tolerated(s string) error {
	_, err := strconv.Atoi(s)
	return err // lint:noerrcheck the caller formats this verbatim
}

// BestEffort suppresses the discard rule for benign cleanup.
func BestEffort(path string) {
	// lint:noerrcheck best-effort cleanup; a missing file is fine
	_ = os.Remove(path)
}
