// Package bad seeds a tracked-goroutine violation for the analyzer
// tests.
package bad

// Spawn launches an untracked worker: nothing joins it on shutdown.
func Spawn(work func()) {
	go work() // want "bare go statement in the serving layer"
}
