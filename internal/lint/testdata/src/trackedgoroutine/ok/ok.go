// Package ok demonstrates the patterns the tracked-goroutine analyzer
// accepts: spawning through a tracked pool, and the pool's own
// annotated spawn point.
package ok

import "sync"

// Pool is a minimal tracked spawn point (the shape of server.Group).
type Pool struct {
	wg sync.WaitGroup
}

// Go runs fn on a tracked goroutine.
func (p *Pool) Go(fn func()) {
	p.wg.Add(1)
	// lint:trackedgo Pool.Go is the sanctioned spawn point
	go func() {
		defer p.wg.Done()
		fn()
	}()
}

// Wait joins every spawned goroutine.
func (p *Pool) Wait() { p.wg.Wait() }

// Serve spawns through the pool, never bare.
func Serve(p *Pool, work func()) {
	p.Go(work)
	p.Wait()
}
