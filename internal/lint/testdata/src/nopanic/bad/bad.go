// Package bad seeds a no-panic violation for the analyzer tests.
package bad

// Explode panics on bad input instead of returning an error.
func Explode(op int) int {
	if op < 0 {
		panic("negative operator") // want "panic in the query path; return an error"
	}
	return op
}
