// Package ok demonstrates the patterns the no-panic analyzer accepts:
// returned errors and lint:invariant-annotated programmer-error
// panics.
package ok

import "fmt"

// Safe surfaces bad input as an error.
func Safe(op int) (int, error) {
	if op < 0 {
		return 0, fmt.Errorf("nopanic: negative operator %d", op)
	}
	return op, nil
}

// MustPositive documents a true invariant: negative operators are
// constructed nowhere, so reaching the panic is programmer error.
func MustPositive(op int) int {
	if op < 0 {
		// lint:invariant negative operators are constructed nowhere
		panic("negative operator")
	}
	return op
}
