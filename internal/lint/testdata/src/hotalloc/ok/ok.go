// Package ok demonstrates the patterns the hotalloc analyzer accepts
// in lint:hotpath functions: batch-granular allocation outside the row
// loop, error-path allocation inside returns, pointer-shaped interface
// arguments, annotated cold branches, and outer batch loops.
package ok

import (
	"fmt"
	"sync"
)

// Row is one decoded record.
type Row struct{ ID int }

// Fill allocates once per batch, outside the row loop, and reuses the
// backing array inside it.
// lint:hotpath scan row loop writes into the preallocated batch
func Fill(n int) []Row {
	rows := make([]Row, n)
	for i := range rows {
		rows[i].ID = i
	}
	return rows
}

// Validate allocates only on the error path: a return exits the loop,
// so the allocation runs at most once per call.
// lint:hotpath validation loop allocates only on the error return
func Validate(ids []int) error {
	for _, id := range ids {
		if id < 0 {
			return fmt.Errorf("negative id %d", id)
		}
	}
	return nil
}

// Emit passes rows by pointer: a pointer fits the interface word
// without a heap copy.
// lint:hotpath emit loop passes rows by pointer
func Emit(rows []Row, out func(any)) {
	for i := range rows {
		out(&rows[i])
	}
}

// Sample keeps a deliberate cold allocation on a rare branch.
// lint:hotpath apply loop allocates only for the rare sampled row
func Sample(ids []int) []int {
	var kept []int
	for _, id := range ids {
		if id%1024 == 0 {
			kept = append(kept, id) // lint:coldalloc one row in 1024 is sampled
		}
	}
	return kept
}

// Nested gates only the innermost loop: the outer batch loop may
// allocate per batch.
// lint:hotpath only the inner row loop is allocation-free
func Nested(batches [][]int) []int {
	var sums []int
	for _, batch := range batches {
		sums = append(sums, 0)
		s := 0
		for _, v := range batch {
			s += v
		}
		sums[len(sums)-1] = s
	}
	return sums
}

// Describe is not marked lint:hotpath, so its loop may allocate
// freely.
func Describe(ids []int) []string {
	var out []string
	for _, id := range ids {
		out = append(out, fmt.Sprint(id))
	}
	return out
}

// Reset zeroes preallocated slots per row: a composite literal
// written into an existing slice element reuses storage instead of
// constructing a heap value.
// lint:hotpath probe loop resets its decision slots in place
func Reset(slots []Row) {
	for i := range slots {
		slots[i] = Row{}
	}
}

// Bail allocates its error inside a terminal block: once entered, the
// block always returns, so the allocation runs at most once per call.
// lint:hotpath eval loop allocates only on the bail-out path
func Bail(results []error, ids []int) error {
	for i, id := range ids {
		if id < 0 {
			err := fmt.Errorf("negative id %d", id)
			results[i] = err
			return err
		}
	}
	return nil
}

// PoolGet obtains scratch from a pool in the batch preamble — outside
// the innermost row loop, which only writes into it.
// lint:hotpath row loop writes into pooled scratch
func PoolGet(pool *sync.Pool, batches [][]int) {
	for _, batch := range batches {
		buf := pool.Get().(*[]int)
		for i, v := range batch {
			if i < len(*buf) {
				(*buf)[i] = v
			}
		}
		pool.Put(buf)
	}
}
