// Package bad seeds per-row allocations inside lint:hotpath row loops
// for the hotalloc analyzer tests.
package bad

import "fmt"

// Row is one decoded record.
type Row struct {
	ID  int
	Tag string
}

func sink(v any) { _ = v }

// FillRows fills map slots per row — not a slot reset (maps grow).
// lint:hotpath the scan loop must reuse the batch's backing array
func FillRows(n int, rowm map[int]Row) {
	for i := 0; i < n; i++ {
		rowm[i] = Row{ID: i} // want "composite literal allocates per row"
	}
}

// Grow sizes and grows buffers per row instead of per batch.
// lint:hotpath the filter loop must use the pooled buffer
func Grow(ids []int) [][]byte {
	var out [][]byte
	for range ids {
		buf := make([]byte, 0, 8) // want "make allocates per row"
		out = append(out, buf)    // want "append grows a buffer per row"
	}
	return out
}

// Format formats and concatenates strings per row.
// lint:hotpath the project loop must not format per row
func Format(ids []int, tags []string) string {
	s := ""
	for i, id := range ids {
		s = s + tags[i]              // want "string concatenation allocates per row"
		msg := fmt.Sprintf("%d", id) // want "fmt.Sprintf formats per row"
		_ = msg
	}
	return s
}

// Box stores concrete values into interfaces per row.
// lint:hotpath the apply loop must pass rows by pointer
func Box(ids []int) {
	var last any
	for _, id := range ids {
		sink(id)  // want "argument boxes int into an interface"
		last = id // want "assignment boxes int into an interface"
	}
	_ = last
}

// Swallow builds an error per row but keeps looping: the branch block
// does not terminate in a return (it continues), so the allocation
// is hot, not a cold bail-out.
// lint:hotpath the eval loop must not build errors it swallows
func Swallow(ids []int) error {
	var last error
	for _, id := range ids {
		if id < 0 {
			last = fmt.Errorf("negative id %d", id) // want "fmt.Errorf formats per row"
			continue
		}
		sink(&last)
	}
	return last
}

// GrowPooled appends past a pooled column's capacity per row — pooled
// buffers are sized in the batch preamble, never grown per row.
// lint:hotpath pooled columns are sized per batch, not grown per row
func GrowPooled(pooled []Row, ids []int) []Row {
	var row Row
	for _, id := range ids {
		row.ID = id
		pooled = append(pooled, row) // want "append grows a buffer per row"
	}
	return pooled
}
