// Package bad seeds per-row allocations inside lint:hotpath row loops
// for the hotalloc analyzer tests.
package bad

import "fmt"

// Row is one decoded record.
type Row struct {
	ID  int
	Tag string
}

func sink(v any) { _ = v }

// FillRows constructs a fresh composite value per row.
// lint:hotpath the scan loop must reuse the batch's backing array
func FillRows(rows []Row) {
	for i := range rows {
		rows[i] = Row{ID: i} // want "composite literal allocates per row"
	}
}

// Grow sizes and grows buffers per row instead of per batch.
// lint:hotpath the filter loop must use the pooled buffer
func Grow(ids []int) [][]byte {
	var out [][]byte
	for range ids {
		buf := make([]byte, 0, 8) // want "make allocates per row"
		out = append(out, buf)    // want "append grows a buffer per row"
	}
	return out
}

// Format formats and concatenates strings per row.
// lint:hotpath the project loop must not format per row
func Format(ids []int, tags []string) string {
	s := ""
	for i, id := range ids {
		s = s + tags[i]              // want "string concatenation allocates per row"
		msg := fmt.Sprintf("%d", id) // want "fmt.Sprintf formats per row"
		_ = msg
	}
	return s
}

// Box stores concrete values into interfaces per row.
// lint:hotpath the apply loop must pass rows by pointer
func Box(ids []int) {
	var last any
	for _, id := range ids {
		sink(id)  // want "argument boxes int into an interface"
		last = id // want "assignment boxes int into an interface"
	}
	_ = last
}
