// Package ok demonstrates the site-name forms the faultsite analyzer
// accepts: registry constants, Site* constructors, registered
// literals, family-prefix concatenations, dynamic values, and the
// annotated escape for a deliberately unregistered family.
package ok

import "eva/internal/faults"

// Wire registers rules through every accepted site-name form.
func Wire(inj *faults.Injector, model string) {
	inj.Rule(faults.SiteUDFAny, faults.Rule{Prob: 1})
	inj.Rule(faults.SiteAny, faults.Rule{Prob: 1})
	inj.Rule(faults.SiteUDF(model), faults.Rule{Prob: 1})
	inj.Rule(faults.SiteViewWritePrefix+"udf_x*", faults.Rule{Prob: 1})
	inj.Rule("udf:yolotiny", faults.Rule{Prob: 1})
}

// Probe checks registered sites and a dynamically built one (the
// dynamic value was validated where it was constructed).
func Probe(inj *faults.Injector, site string) {
	inj.Check(faults.SiteDeadline)
	inj.CheckEval(faults.SiteUDF("YOLOTiny"), 7, 1)
	inj.Check(site)
	inj.CheckWrite(faults.SiteViewWrite("udf_x"), 3, 16)
}

// Experimental exercises a fault family that is not registered yet;
// the annotation records why the registry check is waived.
func Experimental(inj *faults.Injector) {
	inj.Check("gpu:oom") // lint:faultsite prototype accelerator fault family
}
