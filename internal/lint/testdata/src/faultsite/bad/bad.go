// Package bad seeds unregistered fault-site names for the faultsite
// analyzer tests: each typo matches nothing at runtime and would
// silently stop injecting.
package bad

import "eva/internal/faults"

// Wire registers rules against misspelled sites and families.
func Wire(inj *faults.Injector) {
	inj.Rule("uddf:yolotiny", faults.Rule{Prob: 1}) // want "is not in the faults.Sites registry"
	inj.Rule("veiw:write:*", faults.Rule{Prob: 1})  // want "is not in the faults.Sites registry"
}

// Probe checks misspelled sites at the injection points themselves.
func Probe(inj *faults.Injector, model string) {
	inj.CheckEval("uddf:"+model, 1, 1)  // want "does not open a registered family"
	inj.Check("exec:deadlines")         // want "is not in the faults.Sites registry"
	inj.CheckWrite("view:wrte:x", 0, 8) // want "is not in the faults.Sites registry"
}
