// Package ok demonstrates the access patterns the guarded-by analyzer
// accepts: lock-then-defer-unlock, paired lock/unlock, *Locked methods
// whose caller holds the lock, constructors, and lint:nolock.
package ok

import "sync"

// Counter guards its count with an RWMutex.
type Counter struct {
	mu sync.RWMutex
	n  int // guarded by mu
}

// Bump uses the lock-then-defer-unlock idiom; the deferred unlock
// runs at function exit, so the whole body stays guarded.
func (c *Counter) Bump() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// Read pairs RLock with RUnlock around the access.
func (c *Counter) Read() int {
	c.mu.RLock()
	v := c.n
	c.mu.RUnlock()
	return v
}

// bumpLocked assumes the caller holds mu — exempt by naming
// convention.
func (c *Counter) bumpLocked() { c.n++ }

// Double relies on the *Locked helper under its own lock.
func (c *Counter) Double() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bumpLocked()
	c.bumpLocked()
}

// Reset shows the lint:nolock hatch for a deliberate unguarded access.
func (c *Counter) Reset() {
	c.mu.Lock()
	c.n = 0
	c.mu.Unlock()
	// lint:nolock the post-reset read is best-effort debug output
	_ = c.n
}

// NewCounter is a free function: construction happens before the
// value is shared, so constructors are never checked.
func NewCounter(start int) *Counter {
	c := &Counter{}
	c.n = start
	return c
}
