// Package bad seeds guarded-by violations for the analyzer tests.
package bad

import "sync"

// Counter has one properly annotated field and one annotation that
// names a non-mutex field.
type Counter struct {
	mu   sync.Mutex
	name string
	n    int // guarded by mu
	id   int // guarded by name — want "which is not a sync.Mutex/RWMutex field of Counter"
}

// Bump touches the field with no lock at all.
func (c *Counter) Bump() {
	c.n++ // want "field Counter.n (guarded by mu) accessed in Bump without holding mu"
}

// Read releases the lock and then touches the field again.
func (c *Counter) Read() int {
	c.mu.Lock()
	v := c.n
	c.mu.Unlock()
	return v + c.n // want "field Counter.n (guarded by mu) accessed in Read without holding mu"
}
