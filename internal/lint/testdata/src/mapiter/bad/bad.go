// Package bad seeds order-sensitive map iterations for the mapiter
// analyzer tests.
package bad

import (
	"fmt"
	"io"
	"strings"
)

// Keys accumulates map keys in iteration order and never sorts them.
func Keys(m map[string]int) []string {
	var keys []string
	for k := range m { // want "order leaks through append to"
		keys = append(keys, k)
	}
	return keys
}

// Stream sends elements in iteration order.
func Stream(m map[string]int, ch chan<- string) {
	for k := range m { // want "order leaks through a channel send"
		ch <- k
	}
}

// Digest writes elements into a hasher in iteration order.
func Digest(m map[string]int, h io.Writer) {
	for k, v := range m { // want "order leaks through a call to fmt.Fprintf"
		fmt.Fprintf(h, "%s=%d;", k, v)
	}
}

// Render concatenates elements into an outer builder in iteration
// order.
func Render(m map[string]bool) string {
	var sb strings.Builder
	for k := range m { // want "order leaks through a call to sb.WriteString"
		sb.WriteString(k)
	}
	return sb.String()
}
