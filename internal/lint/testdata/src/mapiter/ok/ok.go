// Package ok demonstrates the map iterations the mapiter analyzer
// accepts: the collect-then-sort idiom, commutative accumulation,
// keyed writes, loop-local builders, and the annotated escape.
package ok

import (
	"sort"
	"strings"
)

// SortedKeys is the canonical collect-then-sort idiom: the append
// order is erased by the sort.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Total accumulates commutatively; order cannot leak.
func Total(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// Invert writes into a map keyed by the element, which is
// order-insensitive.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Describe builds each entry's string in a loop-local builder; only
// the keyed result escapes.
func Describe(m map[string]int) map[string]string {
	out := make(map[string]string, len(m))
	for k := range m {
		var sb strings.Builder
		sb.WriteString(k)
		sb.WriteString("!")
		out[k] = sb.String()
	}
	return out
}

// Publish sends in iteration order deliberately: the consumer
// treats messages as an unordered set.
func Publish(m map[string]int, ch chan<- string) {
	// lint:unordered the consumer deduplicates into a set
	for k := range m {
		ch <- k
	}
}
