// Package lint is eva's project-specific static-analysis framework.
// It loads the module's packages with the standard library's go/ast,
// go/parser and go/types (no golang.org/x/tools dependency) and runs
// analyzers that machine-check invariants the type system cannot
// express: exhaustive switches over sealed node/operator types,
// mutex-guarded field access, a panic-free query path, and error
// discipline in the optimizer/executor layers.
//
// Annotations understood by the suite:
//
//	lint:exhaustive        (in a type's doc comment) marks a sealed
//	                       interface or operator enum; every switch
//	                       over it must cover all variants.
//	lint:nonexhaustive     (on or above a default clause) justifies a
//	                       deliberately partial switch.
//	guarded by <field>     (on a struct field) names the sync.Mutex or
//	                       sync.RWMutex that protects the field.
//	lint:nolock            (on or above an access) suppresses the
//	                       guarded-by check for one access.
//	lint:invariant         (on or above a panic call) justifies a
//	                       panic in the query path.
//	lint:noerrcheck        (on or above a statement) suppresses the
//	                       error-discipline check.
//	lint:trackedgo <why>   (on or above a go statement) marks the
//	                       sanctioned spawn point in the serving layer,
//	                       where bare go statements are otherwise
//	                       forbidden.
//	lint:wallclock <why>   (on or above a time.* / math/rand use)
//	                       sanctions a deliberate wall-clock read in a
//	                       deterministic package.
//	lint:unordered <why>   (on or above a map range) asserts the loop's
//	                       effect order cannot leak into observables.
//	lint:hotpath <why>     (directly above a function) marks a row-loop
//	                       function that must not heap-allocate per
//	                       row.
//	lint:coldalloc <why>   (on or above a statement in a hotpath row
//	                       loop) exempts a deliberate cold allocation.
//	lint:faultsite <why>   (on or above an injector call) sanctions a
//	                       site name outside the faults.Sites registry.
//
// Methods whose name ends in "Locked" are exempt from the guarded-by
// check by convention: their contract is that the caller holds the
// lock.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding at a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer inspects one type-checked package and reports diagnostics.
type Analyzer interface {
	Name() string
	Check(u *Universe, pkg *Package) []Diagnostic
}

// Package is one parsed and type-checked module package.
type Package struct {
	Path  string // module-qualified import path, e.g. "eva/internal/exec"
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	lineText map[*ast.File]map[int]string
}

// Universe is the set of loaded packages plus the caches analyzers
// share: the sealed-type registry and per-file comment indexes.
type Universe struct {
	Fset       *token.FileSet
	ModulePath string
	Packages   []*Package // every loaded module package, sorted by path

	sealedOnce  bool
	sealedTypes map[*types.TypeName]*sealedType
}

// PackageFor returns the loaded package with the given import path,
// or nil.
func (u *Universe) PackageFor(path string) *Package {
	for _, p := range u.Packages {
		if p.Path == path {
			return p
		}
	}
	return nil
}

// Suppressed reports whether a comment containing marker appears on
// the line of pos or the line directly above it.
func (u *Universe) Suppressed(pkg *Package, pos token.Pos, marker string) bool {
	f := pkg.fileFor(pos)
	if f == nil {
		return false
	}
	lines := pkg.commentLines(u.Fset, f)
	line := u.Fset.Position(pos).Line
	return strings.Contains(lines[line], marker) || strings.Contains(lines[line-1], marker)
}

func (p *Package) fileFor(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

// commentLines indexes a file's comments by line so suppression
// markers can be matched against the line they annotate.
func (p *Package) commentLines(fset *token.FileSet, f *ast.File) map[int]string {
	if p.lineText == nil {
		p.lineText = map[*ast.File]map[int]string{}
	}
	if m, ok := p.lineText[f]; ok {
		return m
	}
	m := map[int]string{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			start := fset.Position(c.Pos()).Line
			end := fset.Position(c.End()).Line
			for l := start; l <= end; l++ {
				m[l] += c.Text + "\n"
			}
		}
	}
	p.lineText[f] = m
	return m
}

// MatchPath reports whether import path p matches spec. A spec ending
// in "/..." matches the prefix package and everything below it;
// otherwise the match is exact.
func MatchPath(spec, p string) bool {
	if base, ok := strings.CutSuffix(spec, "/..."); ok {
		return p == base || strings.HasPrefix(p, base+"/")
	}
	return spec == p
}

func matchAny(specs []string, p string) bool {
	for _, s := range specs {
		if MatchPath(s, p) {
			return true
		}
	}
	return false
}

// DefaultAnalyzers is the analyzer configuration enforced on the eva
// tree (and by cmd/evalint). The path-scoped analyzers also cover
// their own fixture trees so the seeded violations under
// internal/lint/testdata fire when targeted explicitly.
func DefaultAnalyzers(modPath string) []Analyzer {
	qp := func(rel string) string { return modPath + "/" + rel }
	// The deterministic engine packages: every observable they produce
	// must be a pure function of (query, seed, configuration), which is
	// what the differential/chaos digest matrices verify dynamically
	// and the walltime/mapiter analyzers prove statically.
	deterministic := []string{
		qp("internal/core/..."),
		qp("internal/exec/..."),
		qp("internal/storage/..."),
		qp("internal/symbolic/..."),
		qp("internal/faults/..."),
		qp("internal/udf/..."),
		qp("internal/optimizer/..."),
		qp("internal/server/..."),
		qp("internal/ingest/..."),
	}
	return []Analyzer{
		&ExhaustiveSwitch{},
		&GuardedBy{},
		NewNoPanic(
			qp("internal/exec/..."),
			qp("internal/optimizer/..."),
			qp("internal/expr/..."),
			qp("internal/symbolic/..."),
			qp("internal/lint/testdata/src/nopanic/..."),
		),
		NewErrDiscipline(
			qp("internal/exec/..."),
			qp("internal/optimizer/..."),
			qp("internal/lint/testdata/src/errdiscipline/..."),
		),
		NewTrackedGoroutine(
			qp("internal/server/..."),
			qp("internal/ingest/..."),
			// The storage scrubber spawns a background goroutine; it must
			// go through server.Group like every other long-lived spawn.
			qp("internal/storage/..."),
			qp("internal/lint/testdata/src/trackedgoroutine/..."),
		),
		NewWallTime(append([]string{qp("internal/lint/testdata/src/walltime/...")}, deterministic...)...),
		NewMapIter(append([]string{qp("internal/lint/testdata/src/mapiter/...")}, deterministic...)...),
		NewHotAlloc(),
		&FaultSite{},
	}
}

// Run executes every analyzer over every target package and returns
// the diagnostics sorted by position.
func Run(u *Universe, targets []*Package, analyzers []Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range targets {
		for _, a := range analyzers {
			diags = append(diags, a.Check(u, pkg)...)
		}
	}
	SortDiagnostics(diags)
	return diags
}

// SortDiagnostics orders diagnostics by file, line, column, analyzer.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// namedOf unwraps pointers and aliases and returns the named type, or
// nil if t is not (a pointer to) a named type.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}
