package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ExhaustiveSwitch checks that every switch over a sealed type — a
// type whose doc comment carries "lint:exhaustive" — covers all of
// its variants. For interfaces the variants are the concrete module
// types implementing it; for operator enums they are the constants of
// the type declared in its defining package (exported constants only
// when the type itself is exported, so unexported sentinels like
// array-length markers don't count as variants).
//
// A switch missing variants passes only when its default clause is
// annotated "// lint:nonexhaustive <why>". A switch that covers every
// variant may keep an unannotated default as a safety net.
type ExhaustiveSwitch struct{}

// Name implements Analyzer.
func (a *ExhaustiveSwitch) Name() string { return "exhaustive-switch" }

const nonexhaustiveHint = "add the missing cases or annotate the default clause with // lint:nonexhaustive <why>"

type sealedType struct {
	obj   *types.TypeName
	iface bool
	// ifaceVariants maps each concrete implementation to its display
	// name ("*Scan" when only the pointer type implements).
	ifaceVariants map[*types.TypeName]string
	// enumVariants maps a constant's exact value to its display name,
	// deduplicating aliased constants.
	enumVariants map[string]string
}

func (u *Universe) sealed() map[*types.TypeName]*sealedType {
	if u.sealedOnce {
		return u.sealedTypes
	}
	u.sealedOnce = true
	u.sealedTypes = map[*types.TypeName]*sealedType{}
	for _, p := range u.Packages {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok || !hasExhaustiveMarker(gd, ts) {
						continue
					}
					obj, _ := p.Info.Defs[ts.Name].(*types.TypeName)
					if obj == nil {
						continue
					}
					u.sealedTypes[obj] = &sealedType{obj: obj, iface: types.IsInterface(obj.Type())}
				}
			}
		}
	}
	for _, st := range u.sealedTypes {
		if st.iface {
			u.collectImplementers(st)
		} else {
			collectConstants(st)
		}
	}
	return u.sealedTypes
}

func hasExhaustiveMarker(gd *ast.GenDecl, ts *ast.TypeSpec) bool {
	for _, cg := range []*ast.CommentGroup{gd.Doc, ts.Doc, ts.Comment} {
		if cg != nil && strings.Contains(cg.Text(), "lint:exhaustive") {
			return true
		}
	}
	return false
}

// collectImplementers finds every concrete module type (by value or
// pointer receiver) implementing the sealed interface.
func (u *Universe) collectImplementers(st *sealedType) {
	iface, ok := st.obj.Type().Underlying().(*types.Interface)
	if !ok {
		return
	}
	st.ifaceVariants = map[*types.TypeName]string{}
	for _, p := range u.Packages {
		scope := p.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() || tn == st.obj {
				continue
			}
			t := tn.Type()
			if types.IsInterface(t) {
				continue
			}
			display := tn.Name()
			switch {
			case types.Implements(t, iface):
			case types.Implements(types.NewPointer(t), iface):
				display = "*" + display
			default:
				continue
			}
			if tn.Pkg() != st.obj.Pkg() {
				display = strings.TrimPrefix(display, "*")
				display = tn.Pkg().Name() + "." + display
			}
			st.ifaceVariants[tn] = display
		}
	}
}

// collectConstants finds the enum's variant constants in its defining
// package, keyed by value so aliases collapse to one variant.
func collectConstants(st *sealedType) {
	st.enumVariants = map[string]string{}
	scope := st.obj.Pkg().Scope()
	exportedOnly := st.obj.Exported()
	for _, name := range scope.Names() {
		cn, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(cn.Type(), st.obj.Type()) {
			continue
		}
		if exportedOnly && !cn.Exported() {
			continue
		}
		key := cn.Val().ExactString()
		if _, dup := st.enumVariants[key]; !dup {
			st.enumVariants[key] = cn.Name()
		}
	}
}

// Check implements Analyzer.
func (a *ExhaustiveSwitch) Check(u *Universe, pkg *Package) []Diagnostic {
	sealed := u.sealed()
	if len(sealed) == 0 {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch sw := n.(type) {
			case *ast.TypeSwitchStmt:
				diags = append(diags, a.checkTypeSwitch(u, pkg, sw, sealed)...)
			case *ast.SwitchStmt:
				diags = append(diags, a.checkValueSwitch(u, pkg, sw, sealed)...)
			}
			return true
		})
	}
	return diags
}

func (a *ExhaustiveSwitch) checkTypeSwitch(u *Universe, pkg *Package, sw *ast.TypeSwitchStmt, sealed map[*types.TypeName]*sealedType) []Diagnostic {
	var x ast.Expr
	switch st := sw.Assign.(type) {
	case *ast.ExprStmt:
		if ta, ok := st.X.(*ast.TypeAssertExpr); ok {
			x = ta.X
		}
	case *ast.AssignStmt:
		if ta, ok := st.Rhs[0].(*ast.TypeAssertExpr); ok {
			x = ta.X
		}
	}
	if x == nil {
		return nil
	}
	named := namedOf(pkg.Info.Types[x].Type)
	if named == nil {
		return nil
	}
	st, ok := sealed[named.Obj()]
	if !ok || !st.iface {
		return nil
	}

	covered := map[*types.TypeName]bool{}
	var defaultClause *ast.CaseClause
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			defaultClause = cc
			continue
		}
		for _, te := range cc.List {
			tv := pkg.Info.Types[te]
			if tv.IsNil() {
				continue
			}
			if cn := namedOf(tv.Type); cn != nil {
				covered[cn.Obj()] = true
			}
		}
	}
	var missing []string
	for tn, disp := range st.ifaceVariants {
		if !covered[tn] {
			missing = append(missing, disp)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	if defaultClause != nil && u.Suppressed(pkg, defaultClause.Pos(), "lint:nonexhaustive") {
		return nil
	}
	sort.Strings(missing)
	return []Diagnostic{{
		Pos:      u.Fset.Position(sw.Pos()),
		Analyzer: a.Name(),
		Message: fmt.Sprintf("type switch over %s is not exhaustive: missing %s; %s",
			st.obj.Name(), strings.Join(missing, ", "), nonexhaustiveHint),
	}}
}

func (a *ExhaustiveSwitch) checkValueSwitch(u *Universe, pkg *Package, sw *ast.SwitchStmt, sealed map[*types.TypeName]*sealedType) []Diagnostic {
	if sw.Tag == nil {
		return nil
	}
	named := namedOf(pkg.Info.Types[sw.Tag].Type)
	if named == nil {
		return nil
	}
	st, ok := sealed[named.Obj()]
	if !ok || st.iface {
		return nil
	}

	covered := map[string]bool{}
	var defaultClause *ast.CaseClause
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			defaultClause = cc
			continue
		}
		for _, ce := range cc.List {
			if tv := pkg.Info.Types[ce]; tv.Value != nil {
				covered[tv.Value.ExactString()] = true
			}
		}
	}
	var missing []string
	for key, name := range st.enumVariants {
		if !covered[key] {
			missing = append(missing, name)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	if defaultClause != nil && u.Suppressed(pkg, defaultClause.Pos(), "lint:nonexhaustive") {
		return nil
	}
	sort.Strings(missing)
	return []Diagnostic{{
		Pos:      u.Fset.Position(sw.Pos()),
		Analyzer: a.Name(),
		Message: fmt.Sprintf("switch over %s is not exhaustive: missing %s; %s",
			st.obj.Name(), strings.Join(missing, ", "), nonexhaustiveHint),
	}}
}
