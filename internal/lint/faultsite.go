package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// FaultSite resolves every site name reaching the fault injector —
// the string argument of Injector.Rule, Check, CheckEval, CheckWrite
// and Calls — against the faults.Sites registry. A typo'd site
// ("veiw:write:*") matches nothing at runtime and silently stops
// injecting, which is exactly the failure mode a fault-injection
// harness cannot be allowed to have.
//
// The registry is read from the faults package itself, so analyzer
// and runtime cannot drift: constants named Site*Prefix open a site
// family, the remaining Site* string constants are exact sites or
// wildcard patterns. The analyzer validates
//
//   - constant site arguments (literals and constant expressions)
//     against the registry, honoring trailing-"*" wildcards;
//   - concatenations whose leftmost operand is a string literal
//     ("udf:" + name): the literal must open a registered family;
//   - calls to the faults.Site* constructors (always valid).
//
// Non-constant arguments (a variable holding a constructor result)
// pass — the value was validated where it was built. A deliberately
// unregistered site carries "// lint:faultsite <why>".
type FaultSite struct{}

// Name implements Analyzer.
func (a *FaultSite) Name() string { return "faultsite" }

// siteMethods are the Injector methods whose first argument is a site
// name or rule pattern.
var siteMethods = map[string]bool{
	"Rule": true, "Check": true, "CheckEval": true, "CheckWrite": true,
	"Calls": true,
}

// siteRegistry is the exact/prefix site-family registry extracted
// from the faults package's Site* constants.
type siteRegistry struct {
	exact    []string
	prefixes []string
}

// loadRegistry reads the Site* constants out of the loaded faults
// package. Returns nil when the faults package is not in the universe
// (then no Injector calls can exist in it either).
func loadRegistry(u *Universe) *siteRegistry {
	fp := u.PackageFor(u.ModulePath + "/internal/faults")
	if fp == nil {
		return nil
	}
	reg := &siteRegistry{}
	scope := fp.Types.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !strings.HasPrefix(name, "Site") || c.Val().Kind() != constant.String {
			continue
		}
		v := constant.StringVal(c.Val())
		switch {
		case strings.HasSuffix(name, "Prefix"):
			reg.prefixes = append(reg.prefixes, v)
		case strings.HasSuffix(v, "*"):
			// Wildcard patterns (SiteAny, Site*Any) derive from the
			// prefixes; they need no registry entry of their own.
		default:
			reg.exact = append(reg.exact, v)
		}
	}
	return reg
}

// resolves mirrors faults.RegisteredSite: a site or "*"-pattern is
// valid when it names an exact site, a member of a prefix family, or
// a wildcard that can match at least one registered site.
func (reg *siteRegistry) resolves(pat string) bool {
	if pat == "*" {
		return true
	}
	if stem, ok := strings.CutSuffix(pat, "*"); ok {
		return reg.opensFamily(stem)
	}
	for _, e := range reg.exact {
		if pat == e {
			return true
		}
	}
	for _, p := range reg.prefixes {
		if strings.HasPrefix(pat, p) && len(pat) > len(p) {
			return true
		}
	}
	return false
}

// opensFamily reports whether stem is on the way to (or past the
// start of) a registered family or exact site, so "stem*" and
// "stem"+dynamic can match registered sites.
func (reg *siteRegistry) opensFamily(stem string) bool {
	for _, p := range reg.prefixes {
		if strings.HasPrefix(p, stem) || strings.HasPrefix(stem, p) {
			return true
		}
	}
	for _, e := range reg.exact {
		if strings.HasPrefix(e, stem) {
			return true
		}
	}
	return false
}

// Check implements Analyzer.
func (a *FaultSite) Check(u *Universe, pkg *Package) []Diagnostic {
	reg := loadRegistry(u)
	if reg == nil {
		return nil
	}
	faultsPath := u.ModulePath + "/internal/faults"
	var diags []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := calleeFunc(pkg, call)
			if fn == nil || !siteMethods[fn.Name()] || fn.Pkg() == nil || fn.Pkg().Path() != faultsPath {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() == nil || namedOf(sig.Recv().Type()) == nil ||
				namedOf(sig.Recv().Type()).Obj().Name() != "Injector" {
				return true
			}
			if msg := a.checkSiteArg(pkg, reg, faultsPath, call.Args[0]); msg != "" {
				if u.Suppressed(pkg, call.Pos(), "lint:faultsite") {
					return true
				}
				diags = append(diags, Diagnostic{
					Pos:      u.Fset.Position(call.Args[0].Pos()),
					Analyzer: a.Name(),
					Message:  msg,
				})
			}
			return true
		})
	}
	return diags
}

// checkSiteArg validates one site argument, returning a diagnostic
// message or "" when the argument is acceptable.
func (a *FaultSite) checkSiteArg(pkg *Package, reg *siteRegistry, faultsPath string, arg ast.Expr) string {
	arg = ast.Unparen(arg)
	// Constant (literal or constant expression): full validation.
	if tv, ok := pkg.Info.Types[arg]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		site := constant.StringVal(tv.Value)
		if !reg.resolves(site) {
			return fmt.Sprintf("fault site %q is not in the faults.Sites registry; use a faults.Site* constructor or constant, or annotate // lint:faultsite <why>", site)
		}
		return ""
	}
	switch e := arg.(type) {
	case *ast.CallExpr:
		// A faults.Site* constructor is valid by construction.
		if fn := calleeFunc(pkg, e); fn != nil && fn.Pkg() != nil &&
			fn.Pkg().Path() == faultsPath && strings.HasPrefix(fn.Name(), "Site") {
			return ""
		}
	case *ast.BinaryExpr:
		// "prefix" + dynamic: the literal prefix must open a family.
		left := e.X
		for {
			b, ok := ast.Unparen(left).(*ast.BinaryExpr)
			if !ok {
				break
			}
			left = b.X
		}
		if tv, ok := pkg.Info.Types[ast.Unparen(left)]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
			stem := constant.StringVal(tv.Value)
			if !reg.opensFamily(stem) {
				return fmt.Sprintf("fault-site prefix %q does not open a registered family in faults.Sites; use a faults.Site*Prefix constant, or annotate // lint:faultsite <why>", stem)
			}
		}
	}
	return "" // dynamic value: validated where it was built
}
