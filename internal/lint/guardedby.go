package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// GuardedBy checks that struct fields annotated "// guarded by <mu>"
// are only touched while the named mutex is held. The analysis is
// lexical within each method of the owning type: an access is guarded
// when the nearest preceding lock event on the mutex is an acquire
// (<recv>.mu.Lock / RLock), with deferred unlocks excluded so the
// lock-then-defer-unlock idiom keeps the rest of the body guarded.
//
// Escape hatches: methods named "*Locked" assume the caller holds the
// lock; an access annotated "// lint:nolock <why>" is skipped (e.g.
// initialization before the value is published); free functions —
// constructors that build the struct before any concurrent access —
// are not checked.
type GuardedBy struct{}

// Name implements Analyzer.
func (a *GuardedBy) Name() string { return "guarded-by" }

var guardedByRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

type guardSpec struct {
	field *types.Var
	name  string // field name, for messages
	mutex string // guarding mutex field name
}

// Check implements Analyzer.
func (a *GuardedBy) Check(u *Universe, pkg *Package) []Diagnostic {
	specs, diags := a.collectSpecs(u, pkg)
	if len(specs) == 0 {
		return diags
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			recv := receiverTypeName(pkg, fd)
			if recv == nil || len(specs[recv]) == 0 {
				continue
			}
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				continue
			}
			diags = append(diags, a.checkMethod(u, pkg, fd, recv.Name(), specs[recv])...)
		}
	}
	return diags
}

// collectSpecs gathers the annotated fields per struct type and
// validates that each annotation names a mutex field of the struct.
func (a *GuardedBy) collectSpecs(u *Universe, pkg *Package) (map[*types.TypeName][]guardSpec, []Diagnostic) {
	specs := map[*types.TypeName][]guardSpec{}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			stype, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			tn, _ := pkg.Info.Defs[ts.Name].(*types.TypeName)
			if tn == nil {
				return true
			}
			for _, fld := range stype.Fields.List {
				mutex := guardAnnotation(fld)
				if mutex == "" {
					continue
				}
				if !hasMutexField(tn, mutex) {
					diags = append(diags, Diagnostic{
						Pos:      u.Fset.Position(fld.Pos()),
						Analyzer: a.Name(),
						Message:  fmt.Sprintf("guarded-by annotation names %q, which is not a sync.Mutex/RWMutex field of %s", mutex, tn.Name()),
					})
					continue
				}
				for _, id := range fld.Names {
					if v, ok := pkg.Info.Defs[id].(*types.Var); ok {
						specs[tn] = append(specs[tn], guardSpec{field: v, name: id.Name, mutex: mutex})
					}
				}
			}
			return true
		})
	}
	return specs, diags
}

func guardAnnotation(fld *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

func hasMutexField(tn *types.TypeName, name string) bool {
	st, ok := tn.Type().Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() != name {
			continue
		}
		t := f.Type().String()
		return strings.HasSuffix(t, "sync.Mutex") || strings.HasSuffix(t, "sync.RWMutex")
	}
	return false
}

func receiverTypeName(pkg *Package, fd *ast.FuncDecl) *types.TypeName {
	if len(fd.Recv.List) == 0 {
		return nil
	}
	t := pkg.Info.Types[fd.Recv.List[0].Type].Type
	if named := namedOf(t); named != nil {
		return named.Obj()
	}
	return nil
}

type lockEvent struct {
	pos     token.Pos
	acquire bool
}

func (a *GuardedBy) checkMethod(u *Universe, pkg *Package, fd *ast.FuncDecl, recvName string, specs []guardSpec) []Diagnostic {
	// Calls wrapped in defer are release points at function exit, not
	// at their lexical position; exclude them from the event stream.
	deferred := map[*ast.CallExpr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if ds, ok := n.(*ast.DeferStmt); ok {
			deferred[ds.Call] = true
		}
		return true
	})

	events := map[string][]lockEvent{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || deferred[call] {
			return true
		}
		mutex, acquire, ok := lockCall(call)
		if ok {
			events[mutex] = append(events[mutex], lockEvent{pos: call.Pos(), acquire: acquire})
		}
		return true
	})
	for _, evs := range events {
		sort.Slice(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })
	}

	var diags []Diagnostic
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := pkg.Info.Selections[sel]
		if !ok {
			return true
		}
		v, ok := selection.Obj().(*types.Var)
		if !ok {
			return true
		}
		for _, spec := range specs {
			if spec.field != v {
				continue
			}
			if u.Suppressed(pkg, sel.Pos(), "lint:nolock") {
				break
			}
			if !lockedAt(events[spec.mutex], sel.Pos()) {
				diags = append(diags, Diagnostic{
					Pos:      u.Fset.Position(sel.Pos()),
					Analyzer: a.Name(),
					Message: fmt.Sprintf("field %s.%s (guarded by %s) accessed in %s without holding %s; acquire the lock, use a *Locked method, or annotate // lint:nolock <why>",
						recvName, spec.name, spec.mutex, fd.Name.Name, spec.mutex),
				})
			}
			break
		}
		return true
	})
	return diags
}

// lockCall recognizes <chain>.<mutex>.Lock/RLock/Unlock/RUnlock()
// calls and returns the mutex field name and whether the call
// acquires the lock.
func lockCall(call *ast.CallExpr) (mutex string, acquire, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
	default:
		return "", false, false
	}
	switch x := sel.X.(type) {
	case *ast.SelectorExpr:
		return x.Sel.Name, acquire, true
	case *ast.Ident:
		return x.Name, acquire, true
	}
	return "", false, false
}

// lockedAt reports whether the last lexical lock event before pos is
// an acquire.
func lockedAt(events []lockEvent, pos token.Pos) bool {
	held := false
	for _, e := range events {
		if e.pos >= pos {
			break
		}
		held = e.acquire
	}
	return held
}
