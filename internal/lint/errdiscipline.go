package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// ErrDiscipline enforces two error-handling rules in the optimizer
// and executor layers:
//
//  1. no discarded errors: assigning an error-typed value to the
//     blank identifier hides failures;
//  2. no naked re-returns of foreign errors: "return err" where err
//     most recently came from a call into a different package must
//     wrap the error (fmt.Errorf("...: %w", err)) so the failure
//     carries the layer's context. Errors from same-package calls may
//     propagate bare (the frame that produced them already attached
//     context), and fmt/errors constructors count as wrapping.
//
// "// lint:noerrcheck <why>" on or above the statement suppresses
// either rule.
type ErrDiscipline struct {
	scopes []string
}

// NewErrDiscipline builds the analyzer restricted to the given
// import-path specs (see MatchPath).
func NewErrDiscipline(scopes ...string) *ErrDiscipline { return &ErrDiscipline{scopes: scopes} }

// Name implements Analyzer.
func (a *ErrDiscipline) Name() string { return "error-discipline" }

var errorType = types.Universe.Lookup("error").Type()

// Check implements Analyzer.
func (a *ErrDiscipline) Check(u *Universe, pkg *Package) []Diagnostic {
	if !matchAny(a.scopes, pkg.Path) {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		var bodies []*ast.BlockStmt
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					bodies = append(bodies, fn.Body)
				}
			case *ast.FuncLit:
				bodies = append(bodies, fn.Body)
			}
			return true
		})
		for _, b := range bodies {
			diags = append(diags, a.checkBody(u, pkg, b)...)
		}
	}
	return diags
}

// inspectShallow walks body without descending into nested function
// literals (each literal is analyzed as its own scope).
func inspectShallow(body *ast.BlockStmt, fn func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}

// assignRec records one assignment to an error variable: where it
// happened and whether the value came from a call into a foreign
// (non-wrapping) package.
type assignRec struct {
	pos     token.Pos
	foreign bool
	callee  string
}

func (a *ErrDiscipline) checkBody(u *Universe, pkg *Package, body *ast.BlockStmt) []Diagnostic {
	var diags []Diagnostic

	assigns := map[types.Object][]assignRec{}
	record := func(id *ast.Ident, rhs ast.Expr) {
		obj := pkg.Info.Defs[id]
		if obj == nil {
			obj = pkg.Info.Uses[id]
		}
		if obj == nil || id.Name == "_" {
			return
		}
		rec := assignRec{pos: id.Pos()}
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
			if fn := calleeFunc(pkg, call); fn != nil && fn.Pkg() != nil && fn.Pkg() != pkg.Types {
				switch fn.Pkg().Path() {
				case "fmt", "errors":
					// Wrapping/origination constructors attach context.
				default:
					rec.foreign = true
					rec.callee = fn.Pkg().Name() + "." + fn.Name()
				}
			}
		}
		assigns[obj] = append(assigns[obj], rec)
	}

	inspectShallow(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			diags = append(diags, a.checkDiscards(u, pkg, st)...)
			for i, lhs := range st.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if len(st.Rhs) == len(st.Lhs) {
					record(id, st.Rhs[i])
				} else if len(st.Rhs) == 1 {
					record(id, st.Rhs[0])
				}
			}
		case *ast.ValueSpec:
			for i, id := range st.Names {
				if len(st.Values) == len(st.Names) {
					record(id, st.Values[i])
				} else if len(st.Values) == 1 {
					record(id, st.Values[0])
				}
			}
		}
		return true
	})

	inspectShallow(body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			id, ok := ast.Unparen(res).(*ast.Ident)
			if !ok || id.Name == "nil" {
				continue
			}
			obj := pkg.Info.Uses[id]
			if obj == nil || !types.Identical(obj.Type(), errorType) {
				continue
			}
			var last *assignRec
			for i := range assigns[obj] {
				rec := &assigns[obj][i]
				if rec.pos < ret.Pos() && (last == nil || rec.pos > last.pos) {
					last = rec
				}
			}
			if last == nil || !last.foreign {
				continue
			}
			if u.Suppressed(pkg, ret.Pos(), "lint:noerrcheck") {
				continue
			}
			diags = append(diags, Diagnostic{
				Pos:      u.Fset.Position(ret.Pos()),
				Analyzer: a.Name(),
				Message: fmt.Sprintf("error from %s returned without wrapping; add context with fmt.Errorf(\"...: %%w\", err) or annotate // lint:noerrcheck <why>",
					last.callee),
			})
		}
		return true
	})
	return diags
}

// checkDiscards flags error-typed values assigned to the blank
// identifier.
func (a *ErrDiscipline) checkDiscards(u *Universe, pkg *Package, st *ast.AssignStmt) []Diagnostic {
	var diags []Diagnostic
	for i, lhs := range st.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" {
			continue
		}
		var t types.Type
		if len(st.Rhs) == len(st.Lhs) {
			t = pkg.Info.Types[st.Rhs[i]].Type
		} else if len(st.Rhs) == 1 {
			if tuple, ok := pkg.Info.Types[st.Rhs[0]].Type.(*types.Tuple); ok && i < tuple.Len() {
				t = tuple.At(i).Type()
			}
		}
		if t == nil || !types.Identical(t, errorType) {
			continue
		}
		if u.Suppressed(pkg, id.Pos(), "lint:noerrcheck") {
			continue
		}
		diags = append(diags, Diagnostic{
			Pos:      u.Fset.Position(id.Pos()),
			Analyzer: a.Name(),
			Message:  "error discarded with blank identifier; handle it or annotate // lint:noerrcheck <why>",
		})
	}
	return diags
}

// calleeFunc resolves the static callee of a call, or nil when the
// callee is dynamic (a closure variable) or not a function (a
// conversion, a builtin).
func calleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		fn, _ := pkg.Info.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.Ident:
		fn, _ := pkg.Info.Uses[fun].(*types.Func)
		return fn
	}
	return nil
}
