package eva_test

// The allocation regression gate on the pooled hot path (DESIGN.md
// §13): the warm scan→filter→apply pipeline — apply served entirely
// from a materialized view, batches recycled through the engine's
// BatchPool — must perform ~zero heap allocations per row. The gate
// measures a *marginal* rate with testing.AllocsPerRun at two scan
// lengths, so per-query overhead (parse, optimize, result assembly)
// cancels and only the per-row cost is asserted. A second test pins
// the committed BENCH_alloc.json baseline to the same threshold, so a
// regressed baseline cannot be committed either.

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"eva"
	"eva/internal/vbench"
)

const (
	allocShortFrames = 512
	allocLongFrames  = 2048
)

func allocGateSetup(t *testing.T) *eva.System {
	t.Helper()
	sys, err := eva.Open(eva.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	if _, err := sys.Exec(`LOAD VIDEO 'jackson' INTO video`); err != nil {
		t.Fatal(err)
	}
	_, err = sys.Exec(`CREATE UDF AllocNet
		INPUT  = (frame NDARRAY UINT8(3, ANYDIM, ANYDIM))
		OUTPUT = (allocnet_out BOOLEAN)
		IMPL   = 'bench:parity'
		LOGICAL_TYPE = AllocNet
		PROPERTIES = ('COST_MS' = '1')`)
	if err != nil {
		t.Fatal(err)
	}
	sys.RegisterScalarImpl("AllocNet", func(args []eva.Datum) (eva.Datum, error) {
		return eva.NewBool(len(args[0].Bytes())%2 == 0), nil
	})
	return sys
}

func allocGateQuery(frames int) string {
	return fmt.Sprintf(`SELECT id FROM video WHERE id < %d AND AllocNet(frame) = TRUE`, frames)
}

// warmAllocsPerRun returns the average allocations of one warm run of
// the query, after a cold run has materialized the view and a warm-up
// run has let pooled capacities reach steady state.
func warmAllocsPerRun(t *testing.T, sys *eva.System, query string) float64 {
	t.Helper()
	for i := 0; i < 2; i++ {
		res, err := sys.Exec(query)
		if err != nil {
			t.Fatal(err)
		}
		sys.Recycle(res.Rows)
	}
	var runErr error
	allocs := testing.AllocsPerRun(20, func() {
		res, err := sys.Exec(query)
		if err != nil {
			runErr = err
			return
		}
		sys.Recycle(res.Rows)
	})
	if runErr != nil {
		t.Fatal(runErr)
	}
	return allocs
}

// TestWarmPathAllocsPerRow is the live gate: marginal allocations per
// row on the warm view-served path must stay under the same threshold
// the committed baseline is held to.
func TestWarmPathAllocsPerRow(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed by the race detector")
	}
	sys := allocGateSetup(t)
	short := warmAllocsPerRun(t, sys, allocGateQuery(allocShortFrames))
	long := warmAllocsPerRun(t, sys, allocGateQuery(allocLongFrames))
	// Re-measure short after long so both queries' pooled capacities
	// are steady; keep the smaller sample.
	if again := warmAllocsPerRun(t, sys, allocGateQuery(allocShortFrames)); again < short {
		short = again
	}
	perRow := (long - short) / float64(allocLongFrames-allocShortFrames)
	t.Logf("warm allocs/run: short=%.1f long=%.1f marginal=%.4f/row", short, long, perRow)
	if perRow > vbench.WarmAllocGate {
		t.Errorf("warm view-served path allocates %.4f/row, gate %.2f", perRow, vbench.WarmAllocGate)
	}
	st := sys.PoolStats()
	if st.Hits == 0 || st.Puts == 0 {
		t.Errorf("pool not engaged on the warm path: %+v", st)
	}
}

// TestAllocBaselineCommitted pins the committed BENCH_alloc.json: the
// reuse engine's recorded rate must satisfy the gate, the pool must
// have been engaged, and the pooled/unpooled × workers matrix must be
// complete with byte-identical digests.
func TestAllocBaselineCommitted(t *testing.T) {
	data, err := os.ReadFile("BENCH_alloc.json")
	if err != nil {
		t.Fatalf("committed baseline missing: %v", err)
	}
	var res vbench.AllocResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	var evaCell *vbench.AllocCell
	for i := range res.Cells {
		if res.Cells[i].Mode == "eva-view-served" {
			evaCell = &res.Cells[i]
		}
	}
	if evaCell == nil {
		t.Fatal("baseline has no eva-view-served cell")
	}
	if evaCell.AllocsPerRow > vbench.WarmAllocGate {
		t.Errorf("committed baseline allocates %.4f/row, gate %.2f", evaCell.AllocsPerRow, vbench.WarmAllocGate)
	}
	if evaCell.PoolHits == 0 || evaCell.PoolPuts == 0 {
		t.Errorf("committed baseline shows pool not engaged: %+v", *evaCell)
	}
	want := map[string]bool{}
	for _, pooled := range []bool{false, true} {
		for _, w := range []int{1, 2, 8} {
			want[fmt.Sprintf("%v/%d", pooled, w)] = true
		}
	}
	for _, cell := range res.Matrix {
		delete(want, fmt.Sprintf("%v/%d", cell.Pooled, cell.Workers))
		if cell.Digest != res.Matrix[0].Digest {
			t.Errorf("matrix digest diverges at pooled=%v workers=%d", cell.Pooled, cell.Workers)
		}
	}
	if len(want) != 0 {
		t.Errorf("matrix missing cells: %v", want)
	}
}
