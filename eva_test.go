package eva

import (
	"strings"
	"testing"
	"time"

	"eva/internal/simclock"
)

func openSystem(t *testing.T, mode SystemMode) *System {
	t.Helper()
	sys, err := Open(Config{Dir: t.TempDir(), Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	if err := sys.LoadVideo("video", "jackson"); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestOpenDefaultsAndTempDir(t *testing.T) {
	sys, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if sys.cfg.Mode != ModeEVA {
		t.Errorf("default mode = %s", sys.cfg.Mode)
	}
	if err := sys.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
}

func TestLoadAndSelect(t *testing.T) {
	sys := openSystem(t, ModeEVA)
	res, err := sys.Exec("SELECT id, seconds FROM video WHERE id < 5")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows.Len() != 5 {
		t.Errorf("rows = %d", res.Rows.Len())
	}
	if res.SimTime <= 0 || res.WallTime <= 0 {
		t.Error("timings not populated")
	}
	if !strings.Contains(res.PlanText, "Scan(video") {
		t.Errorf("plan text = %q", res.PlanText)
	}
}

func TestExecScriptAndLoadStatement(t *testing.T) {
	sys, err := Open(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	res, err := sys.ExecScript(`
		LOAD VIDEO 'jackson' INTO v;
		SELECT id FROM v WHERE id < 3;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows.Len() != 3 {
		t.Errorf("rows = %d", res.Rows.Len())
	}
}

func TestReuseAcrossQueries(t *testing.T) {
	sys := openSystem(t, ModeEVA)
	q := `SELECT id, label FROM video CROSS APPLY FasterRCNNResnet50(frame) WHERE id < 400`
	first, err := sys.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	second, err := sys.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	if first.Rows.Len() != second.Rows.Len() {
		t.Fatalf("row mismatch: %d vs %d", first.Rows.Len(), second.Rows.Len())
	}
	if udfTime := second.Breakdown.Get(simclock.CatUDF); udfTime != 0 {
		t.Errorf("second run UDF time = %v, want 0", udfTime)
	}
	if second.SimTime >= first.SimTime {
		t.Errorf("reuse not faster: %v vs %v", second.SimTime, first.SimTime)
	}
	if hit := sys.HitPercentage(); hit < 49 || hit > 51 {
		t.Errorf("hit%% = %v, want ≈ 50", hit)
	}
	if sys.ViewFootprint() <= 0 {
		t.Error("views not materialized")
	}
}

func TestModesDiffer(t *testing.T) {
	q := `SELECT id FROM video CROSS APPLY FasterRCNNResnet50(frame)
		WHERE id < 300 AND label = 'car' AND ColorDet(frame, bbox) = 'Gray'`
	type outcome struct {
		rows int
		hit  float64
	}
	results := map[SystemMode]outcome{}
	for _, mode := range []SystemMode{ModeNoReuse, ModeHashStash, ModeFunCache, ModeEVA} {
		sys := openSystem(t, mode)
		if _, err := sys.Exec(q); err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		res, err := sys.Exec(q)
		if err != nil {
			t.Fatalf("%s second: %v", mode, err)
		}
		results[mode] = outcome{rows: res.Rows.Len(), hit: sys.HitPercentage()}
	}
	base := results[ModeNoReuse].rows
	for mode, o := range results {
		if o.rows != base {
			t.Errorf("%s returned %d rows, no-reuse returned %d", mode, o.rows, base)
		}
	}
	if results[ModeNoReuse].hit != 0 {
		t.Error("no-reuse should have 0 hit%")
	}
	if !(results[ModeEVA].hit > results[ModeHashStash].hit) {
		t.Errorf("EVA hit %v should exceed HashStash %v", results[ModeEVA].hit, results[ModeHashStash].hit)
	}
	if results[ModeFunCache].hit != results[ModeEVA].hit {
		t.Errorf("FunCache hit %v should equal EVA %v (Table 2)", results[ModeFunCache].hit, results[ModeEVA].hit)
	}
}

func TestCreateUDFAndCustomImpl(t *testing.T) {
	sys := openSystem(t, ModeEVA)
	_, err := sys.Exec(`CREATE UDF GrayNissan
		INPUT = (frame BYTES, bbox TEXT)
		OUTPUT = (graynissan_out BOOLEAN)
		IMPL = 'examples/monolithic.go'
		PROPERTIES = ('COST_MS' = '11')`)
	if err != nil {
		t.Fatal(err)
	}
	// Re-creating without OR REPLACE fails; with it succeeds.
	if _, err := sys.Exec(`CREATE UDF GrayNissan INPUT=(frame BYTES) OUTPUT=(x BOOLEAN) IMPL='y'`); err == nil {
		t.Error("duplicate CREATE UDF should fail")
	}
	if _, err := sys.Exec(`CREATE OR REPLACE UDF GrayNissan
		INPUT = (frame BYTES, bbox TEXT) OUTPUT = (graynissan_out BOOLEAN)
		IMPL = 'examples/monolithic.go' PROPERTIES = ('COST_MS' = '11')`); err != nil {
		t.Fatal(err)
	}
	calls := 0
	sys.RegisterScalarImpl("GrayNissan", func(args []Datum) (Datum, error) {
		calls++
		return Datum{}, nil
	})
	_ = calls
	res, err := sys.Exec(`SELECT id FROM video CROSS APPLY FasterRCNNResnet50(frame)
		WHERE id < 200 AND GrayNissan(frame, bbox) = TRUE`)
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	// The monolithic UDF's results are themselves reusable.
	before := calls
	if _, err := sys.Exec(`SELECT id FROM video CROSS APPLY FasterRCNNResnet50(frame)
		WHERE id < 200 AND GrayNissan(frame, bbox) = TRUE`); err != nil {
		t.Fatal(err)
	}
	if calls != before {
		t.Errorf("monolithic UDF re-evaluated %d times on identical query", calls-before)
	}
}

func TestShowStatements(t *testing.T) {
	sys := openSystem(t, ModeEVA)
	res, err := sys.Exec("SHOW TABLES")
	if err != nil || res.Rows.Len() != 1 {
		t.Errorf("SHOW TABLES: %v, %v", res, err)
	}
	res, err = sys.Exec("SHOW UDFS")
	if err != nil || res.Rows.Len() < 5 {
		t.Errorf("SHOW UDFS: %v, %v", res, err)
	}
	if _, err := sys.Exec("SHOW COWS"); err == nil {
		t.Error("SHOW COWS should error")
	}
	if _, err := sys.Exec("SHOW VIEWS"); err != nil {
		t.Error("SHOW VIEWS should work")
	}
}

func TestErrorSurfaces(t *testing.T) {
	sys := openSystem(t, ModeEVA)
	for _, sql := range []string{
		"SELECT bogus syntax here",
		"SELECT id FROM missing WHERE id < 5",
		"LOAD VIDEO 'not-a-dataset' INTO x",
	} {
		if _, err := sys.Exec(sql); err == nil {
			t.Errorf("Exec(%q) should error", sql)
		}
	}
	if err := sys.LoadVideo("video", "jackson"); err == nil {
		t.Error("duplicate table load should error")
	}
}

func TestResetMetrics(t *testing.T) {
	sys := openSystem(t, ModeEVA)
	if _, err := sys.Exec("SELECT id FROM video WHERE id < 10"); err != nil {
		t.Fatal(err)
	}
	if sys.SimulatedTime() == 0 {
		t.Fatal("no time charged")
	}
	sys.ResetMetrics()
	if sys.SimulatedTime() != 0 || sys.HitPercentage() != 0 {
		t.Error("metrics not reset")
	}
}

func TestDatasetVirtualBytesAndHelpers(t *testing.T) {
	sys := openSystem(t, ModeEVA)
	n, err := sys.DatasetVirtualBytes("video")
	if err != nil || n != int64(14000)*600*400*3 {
		t.Errorf("virtual bytes = %d, %v", n, err)
	}
	if _, err := sys.DatasetVirtualBytes("nope"); err == nil {
		t.Error("unknown table should error")
	}
	if len(Datasets()) != 4 {
		t.Errorf("datasets = %v", Datasets())
	}
	res, _ := sys.Exec("SELECT id FROM video WHERE id < 2")
	if out := Format(res.Rows); !strings.Contains(out, "(2 rows)") {
		t.Errorf("Format = %q", out)
	}
}

func TestRecyclerGraphAllOrNothing(t *testing.T) {
	sys := openSystem(t, ModeHashStash)
	if _, err := sys.Exec("SELECT id FROM video CROSS APPLY FasterRCNNResnet50(frame) WHERE id < 50"); err != nil {
		t.Fatal(err)
	}
	evals0 := sys.UDFCounters()["fasterrcnnresnet50"].Evaluated
	if evals0 != 50 {
		t.Fatalf("first query evaluated %d frames", evals0)
	}
	// Covered: subset range is answered from the recycler graph.
	if _, err := sys.Exec("SELECT id FROM video CROSS APPLY FasterRCNNResnet50(frame) WHERE id < 30"); err != nil {
		t.Fatal(err)
	}
	if got := sys.UDFCounters()["fasterrcnnresnet50"].Evaluated; got != evals0 {
		t.Errorf("covered query re-evaluated: %d -> %d", evals0, got)
	}
	// Not covered: HashStash re-runs the whole query — including the
	// already-materialized prefix (no difference computation).
	if _, err := sys.Exec("SELECT id FROM video CROSS APPLY FasterRCNNResnet50(frame) WHERE id < 80"); err != nil {
		t.Fatal(err)
	}
	if got := sys.UDFCounters()["fasterrcnnresnet50"].Evaluated; got != evals0+80 {
		t.Errorf("uncovered query evaluated %d new frames, want 80 (all-or-nothing)", got-evals0)
	}
	if nodes := sys.rec.Nodes(); nodes != 1 {
		t.Errorf("recycler nodes = %d", nodes)
	}
	hits, misses := sys.rec.Stats()
	if hits != 1 || misses != 2 {
		t.Errorf("recycler hits/misses = %d/%d, want 1/2", hits, misses)
	}
}

func TestSimulatedBreakdownAccumulates(t *testing.T) {
	sys := openSystem(t, ModeEVA)
	if _, err := sys.Exec("SELECT id FROM video CROSS APPLY FasterRCNNResnet50(frame) WHERE id < 30"); err != nil {
		t.Fatal(err)
	}
	b := sys.SimulatedBreakdown()
	if b.Get(simclock.CatUDF) < 30*99*time.Millisecond/2 {
		t.Errorf("UDF time = %v, expected ≈ 30 frames × 99ms", b.Get(simclock.CatUDF))
	}
	if b.Get(simclock.CatReadVideo) == 0 {
		t.Error("no video read time charged")
	}
}
