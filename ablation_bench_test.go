// Ablation benchmarks for the design choices DESIGN.md calls out:
// Algorithm 1 predicate reduction on/off, fuzzy bbox reuse on/off, and
// the materialization-aware ranking against the canonical one.
package eva_test

import (
	"testing"

	"eva"
	"eva/internal/vbench"
	"eva/internal/vision"
)

func runHighWorkload(b *testing.B, opts vbench.Options) *vbench.RunMetrics {
	b.Helper()
	wl := vbench.HighWorkload(scaled(vision.MediumUADetrac))
	m, err := vbench.RunWorkload(eva.ModeEVA, wl, opts)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkAblationReduction compares optimizer wall time and formula
// sizes with Algorithm 1 enabled vs disabled. Reuse behaviour is
// identical (probing is key-exact); the reduction pays for itself by
// keeping the symbolic state small.
func BenchmarkAblationReduction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		on := runHighWorkload(b, vbench.Options{})
		off := runHighWorkload(b, vbench.Options{DisableReduction: true})
		if i == 0 {
			atoms := func(m *vbench.RunMetrics) float64 {
				total := 0
				for _, q := range m.Queries {
					for _, p := range q.Preds {
						total += p.UnionAtoms
					}
				}
				return float64(total)
			}
			b.ReportMetric(atoms(on), "atoms-reduced")
			b.ReportMetric(atoms(off), "atoms-unreduced")
		}
	}
}

// BenchmarkAblationRanking compares the Eq. 4 materialization-aware
// ranking against the canonical Eq. 2 ranking over the permuted
// workloads (the Fig. 9 aggregate).
func BenchmarkAblationRanking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		aware := runHighWorkload(b, vbench.Options{})
		canon := runHighWorkload(b, vbench.Options{CanonicalRanking: true})
		if i == 0 {
			b.ReportMetric(canon.SimTotal.Seconds()/aware.SimTotal.Seconds(), "workload-gain-x")
		}
	}
}

// BenchmarkAblationFuzzyReuse measures the §6 fuzzy bbox extension on
// a cross-detector workload: CarType materialized over FRCNN101 boxes,
// probed with FRCNN50 boxes.
func BenchmarkAblationFuzzyReuse(b *testing.B) {
	ds := scaled(vision.MediumUADetrac)
	warm := `SELECT id FROM video CROSS APPLY FasterRCNNResnet101(frame)
	         WHERE id < 300 AND label = 'car' AND CarType(frame, bbox) = 'Nissan'`
	probe := `SELECT id FROM video CROSS APPLY FasterRCNNResnet50(frame)
	          WHERE id < 300 AND label = 'car' AND CarType(frame, bbox) = 'Nissan'`
	run := func(fuzzy bool) float64 {
		sys, err := eva.Open(eva.Config{FuzzyReuse: fuzzy})
		if err != nil {
			b.Fatal(err)
		}
		defer sys.Close()
		if err := sys.LoadDataset("video", ds); err != nil {
			b.Fatal(err)
		}
		if _, err := sys.Exec(warm); err != nil {
			b.Fatal(err)
		}
		res, err := sys.Exec(probe)
		if err != nil {
			b.Fatal(err)
		}
		return res.SimTime.Seconds()
	}
	for i := 0; i < b.N; i++ {
		exact := run(false)
		fuzzy := run(true)
		if i == 0 {
			b.ReportMetric(exact/fuzzy, "fuzzy-gain-x")
		}
	}
}
