package eva

import (
	"fmt"
	"testing"
)

// TestFuzzyBBoxReuseAcrossDetectors exercises the §6 extension: after
// CarType results are materialized for FasterRCNN101's bounding boxes,
// a query over FasterRCNN50's (slightly different) boxes reuses them
// when FuzzyReuse is on, and re-evaluates when it is off.
func TestFuzzyBBoxReuseAcrossDetectors(t *testing.T) {
	warm := `SELECT id FROM video CROSS APPLY FasterRCNNResnet101(frame)
	         WHERE id < 150 AND label = 'car' AND CarType(frame, bbox) = 'Nissan'`
	probe := `SELECT id FROM video CROSS APPLY FasterRCNNResnet50(frame)
	          WHERE id < 150 AND label = 'car' AND CarType(frame, bbox) = 'Nissan'`

	run := func(fuzzy bool) (evaluated, reused int, rows int) {
		sys, err := Open(Config{Dir: t.TempDir(), FuzzyReuse: fuzzy})
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Close()
		if err := sys.LoadVideo("video", "medium-ua-detrac"); err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Exec(warm); err != nil {
			t.Fatal(err)
		}
		before := sys.UDFCounters()["cartype"]
		res, err := sys.Exec(probe)
		if err != nil {
			t.Fatal(err)
		}
		after := sys.UDFCounters()["cartype"]
		return after.Evaluated - before.Evaluated, after.Reused - before.Reused, res.Rows.Len()
	}

	exactEvals, exactReused, exactRows := run(false)
	fuzzyEvals, fuzzyReused, fuzzyRows := run(true)

	if exactReused != 0 {
		t.Fatalf("exact mode reused %d cross-model results; keys should differ", exactReused)
	}
	if fuzzyReused == 0 {
		t.Fatal("fuzzy mode reused nothing across detectors")
	}
	if fuzzyEvals >= exactEvals {
		t.Errorf("fuzzy evals %d should be far below exact %d", fuzzyEvals, exactEvals)
	}
	// Fuzzy reuse must stay approximately faithful: the probe query's
	// result set should be close to the exact one (classifications are
	// tolerant of small box shifts).
	diff := fuzzyRows - exactRows
	if diff < 0 {
		diff = -diff
	}
	if exactRows == 0 {
		t.Skip("no Nissans in range")
	}
	if float64(diff)/float64(exactRows) > 0.10 {
		t.Errorf("fuzzy result drift too large: %d vs %d rows", fuzzyRows, exactRows)
	}
	t.Log(fmt.Sprintf("exact: evals=%d rows=%d; fuzzy: evals=%d reused=%d rows=%d",
		exactEvals, exactRows, fuzzyEvals, fuzzyReused, fuzzyRows))
}

// TestFuzzyReuseOffByDefault guards the default configuration.
func TestFuzzyReuseOffByDefault(t *testing.T) {
	sys, err := Open(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if sys.cfg.FuzzyReuse {
		t.Error("fuzzy reuse must be opt-in")
	}
}
