package eva

import (
	"time"

	"eva/internal/storage"
	"eva/internal/symbolic"
)

// Disk-pressure survival, stage 3 (DESIGN.md §16): this file is the
// eva layer's half of the storage budget — the benefit ranker that
// orders evictions by reuse economics, the eviction upcall that keeps
// the symbolic layer truthful, and the StorageStats surface.

// DiskStats snapshots the disk budget's accounting and the reclaim
// ladder's lifetime activity; see System.StorageStats.
type DiskStats = storage.DiskStats

// StorageStats bundles the durable-storage health counters: the disk
// budget's accounting plus the background scrubber's activity.
type StorageStats struct {
	// Disk is the budget snapshot (zero when Config.DiskBudgetBytes is
	// 0 and no artifacts have been charged).
	Disk DiskStats
	// Scrub is the background scrubber snapshot (zero when
	// Config.ScrubInterval is 0).
	Scrub ScrubberStats
}

// StorageStats snapshots the disk budget and scrubber counters.
func (s *System) StorageStats() StorageStats {
	return StorageStats{
		Disk:  s.store.Budget().Stats(),
		Scrub: s.ScrubberStats(),
	}
}

// benefitRank scores a view's retention benefit as recompute cost ×
// recency-weighted hit rate per byte: the eviction ladder drops the
// lowest score first, so the views that are cheap to rebuild, rarely
// reused, long untouched or disproportionately large go before the
// expensive hot ones. A view is only future recompute cost — never
// data loss — so the ranking is pure economics.
func (s *System) benefitRank(c storage.EvictCandidate) float64 {
	keys := c.Keys
	if keys < 1 {
		keys = 1
	}
	// Recompute cost: the backing UDF's profiled per-invocation cost.
	// Views without predicate state yet fall back to the default UDF
	// cost so ranking stays total.
	costNS := float64(10 * time.Millisecond)
	hit := 0.5
	if entry, ok := s.mgr().EntryByView(c.Name); ok {
		if u, err := s.cat().UDF(entry.Sig.Name); err == nil && u.Cost > 0 {
			costNS = float64(u.Cost)
		}
		if st, ok := s.rt().CounterSnapshot()[entry.Sig.Name]; ok {
			// Laplace-smoothed reuse rate: how often a demanded tuple
			// was served from the view rather than re-evaluated.
			hit = float64(st.Reused+1) / float64(st.Total+2)
		}
	}
	// Recency weighting via access ordinals (virtual, deterministic):
	// the staler the view, the cheaper it is to let go.
	age := 1.0
	if c.Now > c.LastTouch {
		age += float64(c.Now - c.LastTouch)
	}
	bytes := c.Footprint
	if bytes < 1 {
		bytes = 1
	}
	return costNS * float64(keys) * hit / (age * float64(bytes))
}

// viewEvicted is the post-eviction upcall: the view's durable rows are
// gone, so its aggregated predicate must stop claiming them. Retracting
// to FALSE keeps the symbolic layer truthful — the next query that
// needs the view sees a full DIFF residual and re-materializes it
// through the ordinary optimizer path. Any pending repair task is moot.
func (s *System) viewEvicted(name string) {
	if entry, ok := s.mgr().EntryByView(name); ok && !entry.Agg.IsFalse() {
		s.mgr().Constrain(entry.Sig, symbolic.False())
	}
	s.clearRepair(name)
}
