package eva

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"eva/internal/faults"
	"eva/internal/parser"
)

// The scrub chaos matrix is the executable acceptance test for the
// self-healing view storage (DESIGN.md §15): scripts × on-disk
// corruption sites × worker counts, plus crash kill points inside the
// repair pipeline itself. Every cell must converge — after scrub,
// symbolic repair, and one warm re-run — to a digest byte-identical to
// a never-corrupted baseline, and a fresh System reopening the healed
// directory must serve the same state.

// scrubScripts is the subset of testdata scripts that materialize
// views (basic_select builds none, so there is nothing to corrupt).
var scrubScripts = []string{"reuse_flow.sql", "logical_udf.sql", "groupby_agg.sql"}

// runScriptOut executes the script and returns the per-statement row
// output (errors included — they must be deterministic too). Report,
// timing and counter noise is deliberately excluded: post-repair runs
// legitimately differ in reuse accounting, but never in results.
func runScriptOut(t *testing.T, sys *System, src string) string {
	t.Helper()
	stmts, err := parser.ParseAll(src)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	for i, stmt := range stmts {
		res, err := sys.ExecStmt(stmt)
		fmt.Fprintf(&out, "== statement %d ==\n", i+1)
		if err != nil {
			fmt.Fprintf(&out, "error: %v\n", err)
			continue
		}
		if res.Rows != nil && len(res.Rows.Schema()) > 0 {
			out.WriteString(Format(res.Rows))
		}
	}
	return out.String()
}

// viewContentDigest captures every open view's logical content: row
// and processed-key counts plus the formatted rows in sorted order.
// Log order is excluded on purpose — repair re-appends lost rows at
// the tail and compaction rewrites the log, so physical order may
// differ from the baseline while content must not.
func viewContentDigest(sys *System) string {
	names := sys.store.Views()
	sort.Strings(names)
	var out strings.Builder
	for _, n := range names {
		v := sys.store.View(n)
		if v == nil {
			continue
		}
		lines := strings.Split(strings.TrimRight(Format(v.Scan()), "\n"), "\n")
		sort.Strings(lines)
		fmt.Fprintf(&out, "view %s: rows=%d processed=%d\n%s\n",
			n, v.Rows(), v.ProcessedCount(), strings.Join(lines, "\n"))
	}
	return out.String()
}

// viewLogs returns the on-disk view log paths under dir, sorted.
func viewLogs(t *testing.T, dir string) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "views", "*.view"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no view logs under %s: %v", dir, err)
	}
	sort.Strings(paths)
	return paths
}

// largestViewLog returns the biggest view log — guaranteed to hold
// records past the header, so mid/tail flips land inside record data.
func largestViewLog(t *testing.T, dir string) string {
	t.Helper()
	var best string
	var bestSize int64
	for _, p := range viewLogs(t, dir) {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() > bestSize {
			best, bestSize = p, fi.Size()
		}
	}
	return best
}

func flipByte(t *testing.T, path string, off int64) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if off < 0 || off >= int64(len(data)) {
		t.Fatalf("flip offset %d outside %s (%d bytes)", off, path, len(data))
	}
	data[off] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// scrubSites enumerates the corruption placements of the matrix.
var scrubSites = []string{"header", "mid", "tail", "sidecar"}

// corruptViewsAt applies one corruption site to the on-disk logs while
// the owning System is live.
func corruptViewsAt(t *testing.T, dir, site string) {
	t.Helper()
	switch site {
	case "header":
		// Rot the magic of every log: total loss across the board.
		for _, p := range viewLogs(t, dir) {
			flipByte(t, p, 1)
		}
	case "mid":
		// One flip deep inside the largest log: an interior record
		// fails its checksum, the suffix re-synchronizes.
		p := largestViewLog(t, dir)
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		flipByte(t, p, fi.Size()/2)
	case "tail":
		// A flip inside the final record's trailing checksum: the torn
		// tail is truncated rather than quarantined.
		p := largestViewLog(t, dir)
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		flipByte(t, p, fi.Size()-5)
	case "sidecar":
		// Garbage clean-sidecars: they must be rejected, never trusted
		// — and they carry no data, so nothing needs repair.
		for _, p := range viewLogs(t, dir) {
			if err := os.WriteFile(p+".clean", []byte("not a sidecar at all"), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	default:
		t.Fatalf("unknown corruption site %q", site)
	}
}

// scrubBaseline runs the script on a pristine system and captures the
// convergence targets: the cold (first-run) and warm (second-run)
// statement outputs and the view content digest. They differ only in
// catalog side effects — a warm LOAD errors on the existing table — so
// corrupted cells compare warm re-runs against warmOut and fresh
// reopened systems against coldOut.
func scrubBaseline(t *testing.T, src string) (coldOut, warmOut, views string) {
	t.Helper()
	sys, err := Open(Config{Dir: t.TempDir(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	coldOut = runScriptOut(t, sys, src)
	warmOut = runScriptOut(t, sys, src)
	return coldOut, warmOut, viewContentDigest(sys)
}

// TestScrubCorruptionMatrix: every view-building script × corruption
// site × Workers {1,2,8}. Protocol per cell: run the script, corrupt
// the on-disk logs under the live system, Scrub (detect + quarantine +
// register symbolic repairs), Repair (recompute id-granular holes,
// compact), re-run the script (lazily heals non-id-keyed views), and
// require both the statement output and the view content digest to
// byte-match the pristine baseline — then reopen the directory in a
// fresh System and require the same once more.
func TestScrubCorruptionMatrix(t *testing.T) {
	workerSet := []int{1, 2, 8}
	if testing.Short() {
		workerSet = []int{2}
	}
	srcs := chaosScripts(t)
	for _, script := range scrubScripts {
		src := srcs[script]
		if src == "" {
			t.Fatalf("script %s missing", script)
		}
		t.Run(script, func(t *testing.T) {
			coldOut, wantOut, wantViews := scrubBaseline(t, src)
			for _, site := range scrubSites {
				for _, w := range workerSet {
					t.Run(fmt.Sprintf("%s-w%d", site, w), func(t *testing.T) {
						dir := t.TempDir()
						sys, err := Open(Config{Dir: dir, Workers: w})
						if err != nil {
							t.Fatal(err)
						}
						defer sys.Close()
						runScriptOut(t, sys, src)
						corruptViewsAt(t, dir, site)

						rep, err := sys.Scrub()
						if err != nil {
							t.Fatal(err)
						}
						if site == "sidecar" {
							// The scrub ignores sidecar hints entirely — a
							// garbage sidecar is not corruption, just a hint
							// the next open must reject.
							if len(rep.Findings) != 0 {
								t.Fatalf("sidecar garbage produced findings: %+v", rep.Findings)
							}
						} else if len(rep.Findings) == 0 {
							t.Fatalf("scrub missed %s corruption", site)
						}

						if _, err := sys.Repair(); err != nil {
							t.Fatal(err)
						}
						if got := runScriptOut(t, sys, src); got != wantOut {
							t.Errorf("post-repair output diverged from baseline\n%s",
								digestDiff(wantOut, got))
						}
						if got := viewContentDigest(sys); got != wantViews {
							t.Errorf("post-repair view content diverged\n%s",
								digestDiff(wantViews, got))
						}
						// The healed system carries no residue: a second
						// scrub is clean and no repairs are pending.
						rep2, err := sys.Scrub()
						if err != nil {
							t.Fatal(err)
						}
						if len(rep2.Findings) != 0 || rep2.Quarantined != 0 {
							t.Errorf("residue after repair: %+v", rep2)
						}
						if p := sys.PendingRepairs(); len(p) != 0 {
							t.Errorf("repairs still pending: %v", p)
						}
						if err := sys.Close(); err != nil {
							t.Fatal(err)
						}

						// Durability: a fresh System over the healed
						// directory serves the same content.
						sys2, err := Open(Config{Dir: dir, Workers: w})
						if err != nil {
							t.Fatal(err)
						}
						defer sys2.Close()
						if got := runScriptOut(t, sys2, src); got != coldOut {
							t.Errorf("reopened output diverged from baseline\n%s",
								digestDiff(coldOut, got))
						}
						if got := viewContentDigest(sys2); got != wantViews {
							t.Errorf("reopened view content diverged\n%s",
								digestDiff(wantViews, got))
						}
					})
				}
			}
		})
	}
}

// TestRepairCrashKillPoints: a crash at each stage of the repair
// pipeline — between range recomputations (view:repair), inside the
// re-append (view:write), and inside generational compaction
// (view:compact) — must leave the view recoverable: the old state
// stays authoritative, repair is idempotent, and a retry (in-process
// or after a full restart) converges to the pristine baseline.
func TestRepairCrashKillPoints(t *testing.T) {
	src := chaosScripts(t)["reuse_flow.sql"]
	if src == "" {
		t.Fatal("reuse_flow.sql missing")
	}
	_, wantOut, wantViews := scrubBaseline(t, src)
	kills := []struct {
		name string
		site string
		rule faults.Rule
	}{
		{"repair-step", faults.SiteViewRepairAny, faults.Rule{Kind: faults.Crash, At: []int{1}, Limit: 1}},
		{"reappend-write", faults.SiteViewWriteAny, faults.Rule{Kind: faults.Crash, At: []int{1}, Limit: 1, ShortWrite: 7}},
		{"compact-commit", faults.SiteViewCompactAny, faults.Rule{Kind: faults.Crash, At: []int{1}, Limit: 1, ShortWrite: 9}},
	}
	for _, kp := range kills {
		t.Run(kp.name, func(t *testing.T) {
			dir := t.TempDir()
			sys, err := Open(Config{Dir: dir, Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			runScriptOut(t, sys, src)
			corruptViewsAt(t, dir, "mid")
			inj := faults.New(1)
			inj.Rule(kp.site, kp.rule)
			sys.InjectFaults(inj)
			if _, err := sys.Scrub(); err != nil {
				t.Fatal(err)
			}
			rep, err := sys.Repair()
			if err != nil {
				t.Fatal(err)
			}
			crashed := false
			for _, r := range rep.Records {
				if r.Err != "" {
					crashed = true
					if !strings.Contains(r.Err, "crash") {
						t.Errorf("kill point surfaced unclean error: %s", r.Err)
					}
				}
			}
			if !crashed {
				t.Fatal("kill point did not fire — the schedule is vacuous")
			}

			if kp.name == "repair-step" {
				// The inter-range kill point leaves the view alive and
				// the task queued: an in-process retry must converge
				// without a restart.
				if p := sys.PendingRepairs(); len(p) == 0 {
					t.Fatal("crashed repair dropped its task")
				}
				sys.InjectFaults(faults.New(0))
				if _, err := sys.Repair(); err != nil {
					t.Fatal(err)
				}
				if got := runScriptOut(t, sys, src); got != wantOut {
					t.Errorf("in-process retry output diverged\n%s", digestDiff(wantOut, got))
				}
				if got := viewContentDigest(sys); got != wantViews {
					t.Errorf("in-process retry views diverged\n%s", digestDiff(wantViews, got))
				}
			}
			if err := sys.Close(); err != nil {
				t.Fatal(err)
			}

			// Restart over the crashed directory: the old generation (or
			// salvaged log) is authoritative, orphan scratch files are
			// discarded, and scrub + repair + one warm run converge.
			sys2, err := Open(Config{Dir: dir, Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			defer sys2.Close()
			runScriptOut(t, sys2, src)
			if _, err := sys2.Scrub(); err != nil {
				t.Fatal(err)
			}
			if _, err := sys2.Repair(); err != nil {
				t.Fatal(err)
			}
			if got := runScriptOut(t, sys2, src); got != wantOut {
				t.Errorf("post-restart output diverged\n%s", digestDiff(wantOut, got))
			}
			if got := viewContentDigest(sys2); got != wantViews {
				t.Errorf("post-restart views diverged\n%s", digestDiff(wantViews, got))
			}
			rep2, err := sys2.Scrub()
			if err != nil {
				t.Fatal(err)
			}
			if len(rep2.Findings) != 0 || rep2.Quarantined != 0 {
				t.Errorf("residue after restart recovery: %+v", rep2)
			}
		})
	}
}

// TestRepairRecomputesInteriorHole: an interior corruption in an
// id-keyed view is healed by System.Repair *alone* — the survived-id
// residual bounds the hole, the synthesized range query recomputes
// exactly the lost keys, and no user query needs to run again.
func TestRepairRecomputesInteriorHole(t *testing.T) {
	src := chaosScripts(t)["groupby_agg.sql"]
	if src == "" {
		t.Fatal("groupby_agg.sql missing")
	}
	_, _, wantViews := scrubBaseline(t, src)
	dir := t.TempDir()
	sys, err := Open(Config{Dir: dir, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	runScriptOut(t, sys, src)
	corruptViewsAt(t, dir, "mid")
	rep, err := sys.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) == 0 {
		t.Fatal("scrub missed the interior corruption")
	}
	if p := sys.PendingRepairs(); len(p) == 0 {
		t.Fatal("no symbolic repair was registered")
	}
	rrep, err := sys.Repair()
	if err != nil {
		t.Fatal(err)
	}
	repaired := 0
	for _, r := range rrep.Records {
		if r.Err != "" {
			t.Errorf("repair %s failed: %s", r.View, r.Err)
		}
		if r.Ranges > 0 && r.RowsAfter > r.RowsBefore {
			repaired++
		}
		if !r.Compacted {
			t.Errorf("repair %s did not compact", r.View)
		}
	}
	if repaired == 0 {
		t.Error("no view regained rows from the synthesized range queries")
	}
	if got := viewContentDigest(sys); got != wantViews {
		t.Errorf("repair-only healing diverged from baseline\n%s", digestDiff(wantViews, got))
	}
}

// TestBackgroundScrubberHeals: with ScrubInterval set, corruption is
// found by the background scrubber off the virtual clock — no explicit
// Scrub call — and queued for repair.
func TestBackgroundScrubberHeals(t *testing.T) {
	src := chaosScripts(t)["groupby_agg.sql"]
	if src == "" {
		t.Fatal("groupby_agg.sql missing")
	}
	_, wantOut, wantViews := scrubBaseline(t, src)
	dir := t.TempDir()
	sys, err := Open(Config{Dir: dir, Workers: 2, ScrubInterval: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	runScriptOut(t, sys, src)
	corruptViewsAt(t, dir, "mid")
	// Any statement completion nudges the scrubber; the virtual clock
	// has long passed the 1ns cadence, so a pass fires asynchronously.
	warm := runScriptOut(t, sys, src)
	deadline := time.Now().Add(10 * time.Second)
	for len(sys.PendingRepairs()) == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("background scrubber never quarantined the corruption (stats %+v)",
				sys.ScrubberStats())
		}
		time.Sleep(time.Millisecond)
		warm = runScriptOut(t, sys, src)
	}
	if st := sys.ScrubberStats(); st.Passes == 0 {
		t.Fatalf("repairs pending but no scrub pass counted: %+v", st)
	}
	_ = warm
	if _, err := sys.Repair(); err != nil {
		t.Fatal(err)
	}
	if got := runScriptOut(t, sys, src); got != wantOut {
		t.Errorf("post-heal output diverged\n%s", digestDiff(wantOut, got))
	}
	if got := viewContentDigest(sys); got != wantViews {
		t.Errorf("post-heal views diverged\n%s", digestDiff(wantViews, got))
	}
}
