package eva

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"eva/internal/faults"
)

// The evict chaos matrix is the executable acceptance test for
// disk-pressure survival (DESIGN.md §16): view-building scripts ×
// storage-budget levels × injected ENOSPC schedules × worker counts.
// Every cell must produce statement output byte-identical to an
// unconstrained baseline — no query may fail out-of-space while an
// evictable view remains, because the evict-retry ladder reclaims and
// retries behind the scenes — and a reopen of the pressured directory
// must find no tombstones, no zombies, and converge back to baseline.
// (View row counts and simtime are deliberately outside the digest:
// eviction legitimately empties cold caches and charges retry backoff;
// it must never change what a query returns.)

// measureFootprint runs the script twice in a pristine system and
// returns the budget-charged bytes (view logs + sidecars — dataset
// files are not charged) and the largest single view log — the inputs
// for sizing the budget levels.
func measureFootprint(t *testing.T, src string) (total, largest int64) {
	t.Helper()
	dir := t.TempDir()
	sys, err := Open(Config{Dir: dir, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	runScriptOut(t, sys, src)
	runScriptOut(t, sys, src)
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	paths, err := filepath.Glob(filepath.Join(dir, "views", "*"))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		total += fi.Size()
		if filepath.Ext(p) == ".view" && fi.Size() > largest {
			largest = fi.Size()
		}
	}
	if total == 0 || largest == 0 {
		t.Fatalf("script left no durable views to pressure (total=%d largest=%d)", total, largest)
	}
	return total, largest
}

// noTombstones fails if any eviction tombstone survived under dir —
// a completed eviction clears its tombstone, and reopen clears the
// rest; one left behind after Close means a half-finished eviction
// escaped both paths.
func noTombstones(t *testing.T, dir string) {
	t.Helper()
	tombs, err := filepath.Glob(filepath.Join(dir, "views", "*.tomb"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tombs) != 0 {
		t.Errorf("tombstones survived the run: %v", tombs)
	}
}

// TestEvictChaosMatrix: scripts × budget levels × ENOSPC schedules ×
// Workers {1,2,8}. "roomy" holds everything (eviction never needed),
// "snug" barely holds everything (close-time artifacts may force
// reclaim), "tight" cannot hold all views at once (eviction is the
// only way through) but always admits the largest single view, so the
// typed ErrDiskBudget must never surface. The ENOSPC schedules add
// injected disk-full faults on top: transient shortages — with and
// without short writes — that the evict-retry loop must drain without
// a trace in the output.
func TestEvictChaosMatrix(t *testing.T) {
	workerSet := []int{1, 2, 8}
	if testing.Short() {
		workerSet = []int{2}
	}
	schedules := []struct {
		name string
		rule *faults.Rule
	}{
		{"clean", nil},
		{"enospc", &faults.Rule{Kind: faults.Transient, At: []int{1, 3}}},
		{"enospc-short", &faults.Rule{Kind: faults.Transient, At: []int{2, 4}, ShortWrite: 7}},
	}
	var evictions, denials, injected int64
	srcs := chaosScripts(t)
	for _, script := range scrubScripts {
		src := srcs[script]
		if src == "" {
			t.Fatalf("script %s missing", script)
		}
		t.Run(script, func(t *testing.T) {
			coldOut, warmOut, wantViews := scrubBaseline(t, src)
			total, largest := measureFootprint(t, src)
			levels := []struct {
				name  string
				bytes int64
			}{
				{"roomy", total * 2},
				{"snug", total + 512},
				// Tight must always admit the largest single view plus an
				// append's worth of slack — below that, ErrDiskBudget is
				// legitimate. For single-dominant-view scripts this ends up
				// above the charged total (nothing to deny); multi-view
				// scripts land below it and force the full reclaim ladder.
				{"tight", largest + largest/2 + 512},
			}
			for _, level := range levels {
				for _, sched := range schedules {
					for _, w := range workerSet {
						t.Run(fmt.Sprintf("%s-%s-w%d", level.name, sched.name, w), func(t *testing.T) {
							dir := t.TempDir()
							sys, err := Open(Config{Dir: dir, Workers: w, DiskBudgetBytes: level.bytes})
							if err != nil {
								t.Fatal(err)
							}
							defer sys.Close()
							var inj *faults.Injector
							if sched.rule != nil {
								inj = faults.New(0xD15C)
								inj.Rule(faults.SiteDiskFullAny, *sched.rule)
								sys.InjectFaults(inj)
							}

							if got := runScriptOut(t, sys, src); got != coldOut {
								t.Errorf("cold output diverged under disk pressure\n%s",
									digestDiff(coldOut, got))
							}
							if got := runScriptOut(t, sys, src); got != warmOut {
								t.Errorf("warm output diverged under disk pressure\n%s",
									digestDiff(warmOut, got))
							}
							st := sys.StorageStats()
							if st.Disk.LimitBytes != level.bytes {
								t.Errorf("budget limit %d, configured %d", st.Disk.LimitBytes, level.bytes)
							}
							evictions += st.Disk.Evictions
							denials += st.Disk.Denials
							if inj != nil {
								injected += int64(inj.Injected())
							}
							if err := sys.Close(); err != nil {
								t.Fatal(err)
							}
							noTombstones(t, dir)

							// Reopen unconstrained: no zombies, and one run
							// re-materializes anything evicted back to the
							// pristine baseline — content included.
							sys2, err := Open(Config{Dir: dir, Workers: w})
							if err != nil {
								t.Fatal(err)
							}
							defer sys2.Close()
							if got := runScriptOut(t, sys2, src); got != coldOut {
								t.Errorf("reopened output diverged\n%s", digestDiff(coldOut, got))
							}
							if got := viewContentDigest(sys2); got != wantViews {
								t.Errorf("reopened view content diverged\n%s", digestDiff(wantViews, got))
							}
						})
					}
				}
			}
		})
	}
	if evictions == 0 {
		t.Error("no cell evicted a view — the tight budget level is vacuous")
	}
	if denials == 0 {
		t.Error("no cell recorded a budget denial — the matrix never hit the limit")
	}
	if injected == 0 {
		t.Error("ENOSPC schedules injected nothing — the fault rules are vacuous")
	}
}
