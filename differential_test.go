package eva

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"eva/internal/parser"
	"eva/internal/simclock"
)

// The differential serial-vs-parallel harness: every testdata script
// runs under the {Workers} × {BatchSize} matrix, and every parallel
// cell must produce a byte-identical execution digest — result rows,
// plans, optimizer reports, per-category virtual-time breakdowns,
// materialized view contents, and reuse counters — to the serial
// (Workers=1) baseline at the same batch size. This is the engine's
// determinism contract (DESIGN.md §10) made executable: parallelism
// may only change wall-clock time, never anything observable.

var (
	diffWorkers    = []int{1, 2, 8}
	diffBatchSizes = []int{1, 7, 256}
)

// runScriptDigest executes a whole script in a fresh system and
// returns an exhaustive textual digest of everything a client could
// observe.
func runScriptDigest(t *testing.T, src string, workers, batchSize int) string {
	return runScriptDigestCfg(t, src, Config{Workers: workers, BatchSize: batchSize})
}

// runScriptDigestCfg is runScriptDigest with full Config control (the
// pooling differential flips DisablePooling; Dir is always overridden
// with a fresh temp dir).
func runScriptDigestCfg(t *testing.T, src string, cfg Config) string {
	t.Helper()
	cfg.Dir = t.TempDir()
	sys, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	stmts, err := parser.ParseAll(src)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	for i, stmt := range stmts {
		res, err := sys.ExecStmt(stmt)
		if err != nil {
			t.Fatalf("statement %d: %v", i+1, err)
		}
		fmt.Fprintf(&out, "== statement %d ==\n", i+1)
		if res.Rows != nil && len(res.Rows.Schema()) > 0 {
			out.WriteString(Format(res.Rows))
		}
		if res.PlanText != "" {
			out.WriteString(res.PlanText)
		}
		writeReportDigest(&out, res.Report)
		fmt.Fprintf(&out, "simtime: %d\n", res.SimTime)
		writeBreakdownDigest(&out, res.Breakdown)
	}
	// Post-script state: materialized views, demand/reuse counters.
	views := sys.ViewRows()
	names := make([]string, 0, len(views))
	for n := range views {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&out, "view %s: %d rows\n", n, views[n])
	}
	counters := sys.UDFCounters()
	cnames := make([]string, 0, len(counters))
	for n := range counters {
		cnames = append(cnames, n)
	}
	sort.Strings(cnames)
	for _, n := range cnames {
		fmt.Fprintf(&out, "udf %s: %+v\n", n, counters[n])
	}
	fmt.Fprintf(&out, "hit%%: %.6f\ntotal simtime: %d\n", sys.HitPercentage(), sys.SimulatedTime())
	return out.String()
}

// writeReportDigest covers every Report field except OptimizeTime,
// which is measured wall time (like Result.WallTime) and so differs
// between any two runs, serial or not.
func writeReportDigest(out *strings.Builder, r OptimizerReport) {
	fmt.Fprintf(out, "report: scan=[%d,%d) pre=%v order=%v eval=%q sources=%v degraded=%v\n",
		r.ScanLo, r.ScanHi, r.PreOrder, r.Order, r.DetectorEval, r.DetectorSources, r.Degraded)
	keys := make([]string, 0, len(r.Preds))
	for k := range r.Preds {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(out, "  pred %s: %+v\n", k, r.Preds[k])
	}
}

func writeBreakdownDigest(out *strings.Builder, b Breakdown) {
	cats := make([]simclock.Category, 0, len(b))
	for c := range b {
		cats = append(cats, c)
	}
	sort.Slice(cats, func(i, j int) bool { return cats[i] < cats[j] })
	for _, c := range cats {
		fmt.Fprintf(out, "  %s: %d\n", c, b[c])
	}
}

// TestDifferentialMatrix asserts the determinism contract over every
// testdata script and every matrix cell.
func TestDifferentialMatrix(t *testing.T) {
	scripts, err := filepath.Glob(filepath.Join("testdata", "scripts", "*.sql"))
	if err != nil || len(scripts) == 0 {
		t.Fatalf("no scripts found: %v", err)
	}
	for _, script := range scripts {
		src, err := os.ReadFile(script)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(filepath.Base(script), func(t *testing.T) {
			for _, bs := range diffBatchSizes {
				baseline := runScriptDigest(t, string(src), 1, bs)
				for _, w := range diffWorkers[1:] {
					w := w
					t.Run(fmt.Sprintf("workers%d-batch%d", w, bs), func(t *testing.T) {
						got := runScriptDigest(t, string(src), w, bs)
						if got != baseline {
							t.Errorf("digest diverged from serial baseline (batch %d)\n%s",
								bs, digestDiff(baseline, got))
						}
					})
				}
			}
		})
	}
}

// TestPoolingDifferential asserts the pooled-batch lifecycle is
// observationally invisible (DESIGN.md §13): for every script, the
// unpooled serial run and the pooled runs at Workers {1,2,8} produce
// byte-identical digests — rows, reports, view state, counters and
// virtual-clock totals. Recycling may only change allocation traffic,
// never anything a client can see.
func TestPoolingDifferential(t *testing.T) {
	scripts, err := filepath.Glob(filepath.Join("testdata", "scripts", "*.sql"))
	if err != nil || len(scripts) == 0 {
		t.Fatalf("no scripts found: %v", err)
	}
	for _, script := range scripts {
		src, err := os.ReadFile(script)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(filepath.Base(script), func(t *testing.T) {
			for _, bs := range []int{7, 256} {
				baseline := runScriptDigestCfg(t, string(src),
					Config{Workers: 1, BatchSize: bs, DisablePooling: true})
				for _, w := range diffWorkers {
					w := w
					t.Run(fmt.Sprintf("pooled-workers%d-batch%d", w, bs), func(t *testing.T) {
						got := runScriptDigestCfg(t, string(src),
							Config{Workers: w, BatchSize: bs})
						if got != baseline {
							t.Errorf("pooled digest diverged from unpooled serial (batch %d)\n%s",
								bs, digestDiff(baseline, got))
						}
					})
				}
			}
		})
	}
}

// digestDiff points at the first diverging line to keep failures
// readable; the digests run to hundreds of lines.
func digestDiff(want, got string) string {
	wl := strings.Split(want, "\n")
	gl := strings.Split(got, "\n")
	for i := 0; i < len(wl) && i < len(gl); i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("line %d:\n  serial:   %q\n  parallel: %q", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("length differs: serial %d lines, parallel %d lines", len(wl), len(gl))
}
