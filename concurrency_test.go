package eva

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"eva/internal/catalog"
	"eva/internal/types"
)

// TestConcurrentQueriesStress drives the full stack from several
// goroutines at once: SELECTs with overlapping detector and scalar
// UDF predicates (so the manager's aggregated predicates are read and
// committed concurrently), direct view appends, and catalog
// statistics refreshes. Run under -race this exercises every lock the
// guarded-by analyzer tracks; it is the concurrency gate the ISSUE's
// verification story requires.
func TestConcurrentQueriesStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	sys := openSystem(t, ModeEVA)

	// Warm up one detector range so reuse paths (INTER plans) are hit
	// alongside first-run paths (DIFF plans) below.
	if _, err := sys.Exec(`SELECT id FROM video CROSS APPLY FasterRCNNResnet50(frame) WHERE id < 40`); err != nil {
		t.Fatal(err)
	}

	queries := []string{
		`SELECT id, label FROM video CROSS APPLY FasterRCNNResnet50(frame) WHERE id < 60`,
		`SELECT id FROM video CROSS APPLY FasterRCNNResnet50(frame) WHERE id >= 20 AND id < 70 AND label = 'car'`,
		`SELECT id FROM video CROSS APPLY FasterRCNNResnet50(frame) WHERE id < 50 AND CarType(frame, bbox) = 'nissan'`,
		`SELECT COUNT(*) FROM video CROSS APPLY FasterRCNNResnet50(frame) WHERE id < 80`,
		`SELECT id, seconds FROM video WHERE id < 100`,
	}

	var wg sync.WaitGroup

	// Query workers: every statement goes through parse → optimize
	// (manager reads) → execute (view appends, manager commits).
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				q := queries[(w+i)%len(queries)]
				if _, err := sys.Exec(q); err != nil {
					t.Errorf("worker %d: %s: %v", w, q, err)
					return
				}
			}
		}(w)
	}

	// View appender: writes rows into a dedicated view while the
	// executors append to theirs and scan the engine's registry.
	wg.Add(1)
	go func() {
		defer wg.Done()
		schema := types.Schema{
			{Name: "id", Kind: types.KindInt},
			{Name: "score", Kind: types.KindFloat},
		}
		v, err := sys.store.CreateView("stress_side_view", schema, []string{"id"})
		if err != nil {
			t.Errorf("create view: %v", err)
			return
		}
		for i := 0; i < 100; i++ {
			rows := types.NewBatch(schema)
			rows.MustAppendRow(types.NewInt(int64(i)), types.NewFloat(float64(i)/100))
			if _, err := v.Append(rows, nil); err != nil {
				t.Errorf("append: %v", err)
				return
			}
			_ = v.Scan()
			_ = sys.store.TotalViewFootprint()
		}
	}()

	// Stats refresher: replaces table statistics while optimizer
	// threads compute selectivities from them.
	wg.Add(1)
	go func() {
		defer wg.Done()
		tbl, err := sys.cat().Table("video")
		if err != nil {
			t.Errorf("table: %v", err)
			return
		}
		for i := 0; i < 100; i++ {
			samples := make([]float64, 32)
			for j := range samples {
				samples[j] = float64((i + j) % 200)
			}
			tbl.Stats.SetNumeric("id", catalog.NewHistogram(0, 14000, 16, samples))
			tbl.Stats.SetCategorical("cartype(frame, bbox)", map[string]float64{
				"nissan": 0.2, "toyota": 0.3, "ford": 0.5,
			})
		}
	}()

	wg.Wait()

	// The serial answer must match a fresh system's: concurrency must
	// not corrupt materialized views or aggregated predicates.
	res, err := sys.Exec(`SELECT COUNT(*) AS n FROM video CROSS APPLY FasterRCNNResnet50(frame) WHERE id < 60`)
	if err != nil {
		t.Fatal(err)
	}
	fresh := openSystem(t, ModeNoReuse)
	want, err := fresh.Exec(`SELECT COUNT(*) AS n FROM video CROSS APPLY FasterRCNNResnet50(frame) WHERE id < 60`)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Rows.At(0, 0).Int()
	exp := want.Rows.At(0, 0).Int()
	if got != exp {
		t.Fatalf("post-stress COUNT = %d, fresh system says %d", got, exp)
	}
}

// TestConcurrentMetricsReads runs the read-only introspection surface
// (reuse counters, footprints, simulated time) against live queries.
func TestConcurrentMetricsReads(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	sys := openSystem(t, ModeEVA)

	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				q := fmt.Sprintf(`SELECT id FROM video CROSS APPLY FasterRCNNResnet50(frame) WHERE id < %d`, 30+10*w+10*i)
				if _, err := sys.Exec(q); err != nil {
					t.Errorf("%s: %v", q, err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			_ = sys.HitPercentage()
			_ = sys.ViewFootprint()
			_ = sys.UDFCounters()
			_ = sys.SimulatedTime()
		}
	}()
	wg.Wait()
}

// TestCrossSessionReuseDeterminism: after session A populates a view,
// session B's refinement must reuse it exactly as a scripted serial
// run through the System path would — the same rows, the same
// optimizer reuse decisions, and the same system-wide hit percentage.
// Cross-session reuse is deterministic, not best-effort.
func TestCrossSessionReuseDeterminism(t *testing.T) {
	populate := `SELECT id, label FROM video CROSS APPLY FasterRCNNResnet50(frame) WHERE id < 60`
	refine := `SELECT id FROM video CROSS APPLY FasterRCNNResnet50(frame) WHERE id < 40 AND label = 'car'`

	base := openSystem(t, ModeEVA)
	if _, err := base.Exec(populate); err != nil {
		t.Fatal(err)
	}
	want, err := base.Exec(refine)
	if err != nil {
		t.Fatal(err)
	}
	wantHit := base.HitPercentage()

	sys := openSystem(t, ModeEVA)
	a, b := sys.NewSession(), sys.NewSession()
	if _, err := a.Exec(populate); err != nil {
		t.Fatal(err)
	}
	got, err := b.Exec(refine)
	if err != nil {
		t.Fatal(err)
	}
	if Format(got.Rows) != Format(want.Rows) {
		t.Error("session B's rows diverge from the serial baseline")
	}
	var wantRep, gotRep strings.Builder
	writeReportDigest(&wantRep, want.Report)
	writeReportDigest(&gotRep, got.Report)
	if gotRep.String() != wantRep.String() {
		t.Errorf("session B's reuse decisions diverged:\nserial:\n%s\nsession:\n%s",
			wantRep.String(), gotRep.String())
	}
	if hit := sys.HitPercentage(); hit != wantHit {
		t.Errorf("hit%% after cross-session reuse = %v, serial baseline = %v", hit, wantHit)
	}
	if hit := sys.HitPercentage(); hit == 0 {
		t.Error("refinement recorded no reuse at all")
	}
}
