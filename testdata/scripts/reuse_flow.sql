-- Refinement flow: the third query is served from materialized views.
LOAD VIDEO 'medium-ua-detrac' INTO video;
SELECT id, label FROM video CROSS APPLY FasterRCNNResnet50(frame)
  WHERE id < 40 AND label = 'car' AND CarType(frame, bbox) = 'Nissan';
SELECT id, label FROM video CROSS APPLY FasterRCNNResnet50(frame)
  WHERE id < 40 AND label = 'car' AND CarType(frame, bbox) = 'Nissan'
  AND ColorDet(frame, bbox) = 'Gray';
SELECT id, label, ColorDet(frame, bbox) AS color FROM video CROSS APPLY FasterRCNNResnet50(frame)
  WHERE id < 40 AND label = 'car' AND CarType(frame, bbox) = 'Nissan';
