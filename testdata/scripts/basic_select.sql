-- Plain column queries: scan pushdown and filtering.
LOAD VIDEO 'jackson' INTO video;
SELECT id, seconds FROM video WHERE id >= 5 AND id < 12;
