-- Logical detector binding with accuracy tiers.
LOAD VIDEO 'medium-ua-detrac' INTO video;
SELECT id, COUNT(*) AS n FROM video CROSS APPLY ObjectDetector(frame) ACCURACY 'HIGH'
  WHERE id < 6 GROUP BY id;
SELECT id, COUNT(*) AS n FROM video CROSS APPLY ObjectDetector(frame) ACCURACY 'LOW'
  WHERE id < 6 GROUP BY id;
