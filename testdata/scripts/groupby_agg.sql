-- Aggregation over detector outputs (the Listing 1 Q4 shape).
LOAD VIDEO 'medium-ua-detrac' INTO video;
SELECT id, COUNT(*) AS vehicles, MIN(area) AS smallest, MAX(area) AS largest
  FROM video CROSS APPLY FasterRCNNResnet50(frame)
  WHERE id < 8 AND label = 'car'
  GROUP BY id;
