//go:build race

package eva_test

// raceEnabled mirrors the -race build mode for tests whose assertions
// are perturbed by the race detector (allocation counts; sync.Pool
// drops items adversarially under -race).
const raceEnabled = true
